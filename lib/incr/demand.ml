(** Demand-driven query answering: magic-set subgoals over the raw EDB,
    memoized in a component-invalidated {!Subgoal_cache}. See the
    interface for the contract and DESIGN.md, "Demand-driven serving",
    for the discipline. *)

open Guarded_core
open Guarded_datalog

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

type apply_result = {
  res_added : int;
  res_removed : int;
}

type t = {
  d_program : Theory.t;
  d_strata : Theory.t list;  (** for the full-fixpoint fallback *)
  d_edb : Database.t;  (** owned copy; mutated only by [apply] *)
  d_pool : Guarded_par.Pool.t option;
  d_cache : Subgoal_cache.t;
  d_magic_ok : bool;
      (** positive, single-head, unannotated: the magic fragment *)
  d_acdom : bool;
  d_idb : Theory.Rel_set.t;
  (* Epoch-stamped memos, both read-shared: racing readers may compute
     twice and whoever publishes last wins — every value published for
     an epoch is equivalent. [apply] runs under the server's exclusive
     lock, so a stamp can never be published for an epoch that has
     already passed. *)
  mutable d_base : (int * Database.t) option;  (** EDB ∪ ACDom *)
  mutable d_full : (int * Database.t) option;  (** whole fixpoint *)
}

let create ?pool (sigma : Theory.t) (db0 : Database.t) =
  Seminaive.check_datalog sigma;
  if not (Stratify.is_stratified sigma) then
    invalid_arg "Demand.create: program is not stratified";
  let magic_ok =
    List.for_all
      (fun r ->
        Rule.is_datalog r && Rule.is_positive r && List.length (Rule.head r) = 1)
      (Theory.rules sigma)
    && Theory.Rel_set.for_all (fun (_, ann, _) -> ann = 0) (Theory.relations sigma)
  in
  {
    d_program = sigma;
    d_strata = Stratify.strata sigma;
    d_edb = Database.copy db0;
    d_pool = pool;
    d_cache = Subgoal_cache.create sigma;
    d_magic_ok = magic_ok;
    d_acdom = Seminaive.mentions_acdom sigma;
    d_idb = Theory.head_relations sigma;
    d_base = None;
    d_full = None;
  }

let program t = t.d_program
let pool t = t.d_pool
let edb t = t.d_edb
let cache_stats t = Subgoal_cache.stats t.d_cache

(* ------------------------------------------------------------------ *)
(* Evaluation inputs                                                   *)

(* The first stratum's input: the EDB plus the materialized active
   domain when the program mentions ACDom — exactly what [Incr] calls
   the base database. Shared read-only by concurrent queries. *)
let base t =
  if not t.d_acdom then t.d_edb
  else begin
    let epoch = Subgoal_cache.epoch t.d_cache in
    match t.d_base with
    | Some (e, db) when e = epoch -> db
    | _ ->
      let db = Database.copy t.d_edb in
      Database.materialize_acdom db;
      t.d_base <- Some (epoch, db);
      db
  end

(* Fallback for programs outside the magic fragment: the whole
   stratified fixpoint, computed on first demand and memoized until the
   next effective commit. *)
let full t =
  let epoch = Subgoal_cache.epoch t.d_cache in
  match t.d_full with
  | Some (e, db) when e = epoch -> db
  | _ ->
    let db =
      List.fold_left
        (fun acc s -> Seminaive.eval ~acdom:false ?pool:t.d_pool s acc)
        (base t) t.d_strata
    in
    t.d_full <- Some (epoch, db);
    db

let match_tuples db rel pattern =
  let q = Atom.make rel pattern in
  let acc = ref Tuple_set.empty in
  Database.iter_candidates db q (fun fact ->
      if Atom.ann fact = [] then
        match Subst.match_atom Subst.empty q fact with
        | Some _ -> acc := Tuple_set.add (Atom.args fact) !acc
        | None -> ());
  Tuple_set.elements !acc

(* ------------------------------------------------------------------ *)
(* Subgoals                                                            *)

(* One demanded subgoal: the tuples of [rel] matching [pattern]
   (constants bound, repeated variables equated) in the program's
   fixpoint over the current EDB. Intensional subgoals go through the
   cache; purely extensional ones are direct index scans and are not
   worth a table entry. *)
let subgoal t ~rel ~pattern =
  let arity = List.length pattern in
  let intensional = Theory.Rel_set.mem (rel, 0, arity) t.d_idb in
  let acdom =
    t.d_acdom && String.equal rel Database.acdom_rel && arity = 1
  in
  if not (intensional || acdom) then match_tuples t.d_edb rel pattern
  else begin
    let key = Subgoal_cache.key ~rel ~pattern in
    match Subgoal_cache.find t.d_cache key with
    | Some tuples -> tuples
    | None ->
      (* the epoch is read before evaluating: if a commit lands during
         the evaluation, the store below is dropped as stale. *)
      let epoch = Subgoal_cache.epoch t.d_cache in
      let tuples =
        if intensional && t.d_magic_ok then
          Magic.answers ?pool:t.d_pool t.d_program
            { Magic.q_rel = rel; q_pattern = pattern }
            (base t)
        else if intensional then match_tuples (full t) rel pattern
        else match_tuples (base t) rel pattern
      in
      Subgoal_cache.store t.d_cache key ~epoch tuples;
      tuples
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let pattern_answers t ~rel ~pattern =
  subgoal t ~rel ~pattern |> List.filter (List.for_all Term.is_const)

let answers t ~query =
  if not t.d_magic_ok then Database.constant_tuples (full t) query
  else begin
    (* [Incr.answers] reads constant tuples by name across arities and
       annotations; mirror that as EDB facts of the name plus one
       all-free subgoal per arity the program derives. (Annotated
       relations cannot be intensional here — the magic fragment
       excludes them — so the EDB scan covers them.) *)
    let acc =
      List.fold_left
        (fun acc tuple -> Tuple_set.add tuple acc)
        Tuple_set.empty
        (Database.constant_tuples t.d_edb query)
    in
    let acc =
      if t.d_acdom && String.equal query Database.acdom_rel then
        List.fold_left
          (fun acc tuple -> Tuple_set.add tuple acc)
          acc
          (Database.constant_tuples (base t) query)
      else acc
    in
    let arities =
      Theory.Rel_set.fold
        (fun (n, ann, a) acc -> if String.equal n query && ann = 0 then a :: acc else acc)
        t.d_idb []
      |> List.sort_uniq Int.compare
    in
    List.fold_left
      (fun acc arity ->
        let pattern = List.init arity (fun i -> Term.Var (Printf.sprintf "qx%d" i)) in
        List.fold_left
          (fun acc tuple ->
            if List.for_all Term.is_const tuple then Tuple_set.add tuple acc else acc)
          acc
          (subgoal t ~rel:query ~pattern))
      acc arities
    |> Tuple_set.elements
  end

let cq_answers t ~body ~answer_vars =
  (* Build a scratch database holding, per body atom, a superset of the
     facts that atom can match — the demanded subgoal for intensional
     atoms, the exact EDB relation otherwise — and run the same join
     dispatch as the materialized path over it. Restricting each
     relation to the union of its atoms' subgoals is sound: a fact
     outside every subgoal matches no body atom. *)
  let scratch = Database.create () in
  List.iter
    (fun atom ->
      if Atom.ann atom <> [] then
        (* annotated atoms are outside the magic fragment: their facts
           come from the EDB (magic programs) or the full fixpoint. *)
        List.iter
          (fun f -> ignore (Database.add scratch f))
          (Database.facts_of_rel
             (if t.d_magic_ok then t.d_edb else full t)
             (Atom.rel_key atom))
      else
        let rel = Atom.rel atom in
        List.iter
          (fun tuple -> ignore (Database.add scratch (Atom.make rel tuple)))
          (subgoal t ~rel ~pattern:(Atom.args atom)))
    body;
  let acc = ref Tuple_set.empty in
  let iter_body k =
    match Planner.plan body with
    | Planner.Binary -> Homomorphism.iter_pos body scratch k
    | Planner.Wcoj order -> Wcoj.iter_pos ~order body scratch k
  in
  iter_body (fun subst ->
      let tuple =
        List.map
          (fun v -> match Subst.find_opt v subst with Some tm -> tm | None -> Term.Var v)
          answer_vars
      in
      if List.for_all Term.is_const tuple then acc := Tuple_set.add tuple !acc);
  Tuple_set.elements !acc

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

let apply t (delta : Delta.t) =
  let in_additions = Atom.Tbl.create 16 in
  List.iter (fun f -> Atom.Tbl.replace in_additions f ()) delta.Delta.additions;
  let added = ref 0 and removed = ref 0 in
  let touched = ref [] in
  List.iter
    (fun f ->
      if (not (Atom.Tbl.mem in_additions f)) && Database.remove t.d_edb f then begin
        incr removed;
        touched := Atom.rel_key f :: !touched
      end)
    delta.Delta.deletions;
  List.iter
    (fun f ->
      if Database.add t.d_edb f then begin
        incr added;
        touched := Atom.rel_key f :: !touched
      end)
    delta.Delta.additions;
  if !touched <> [] then
    Subgoal_cache.invalidate t.d_cache (List.sort_uniq compare !touched);
  { res_added = !added; res_removed = !removed }
