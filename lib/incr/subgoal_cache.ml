(** Tabled subgoal answers with component-scoped invalidation: see the
    interface for the discipline. *)

open Guarded_core
module Depgraph = Guarded_datalog.Depgraph

(* ------------------------------------------------------------------ *)
(* Keys                                                                *)

(* Variables canonicalized by first occurrence: the pattern's shape —
   which positions are bound to which constants, which free positions
   coincide — is the key, not the caller's variable names. *)
let canonical_pattern pattern =
  let seen : (string, Term.t) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun t ->
      match t with
      | Term.Const _ | Term.Null _ -> t
      | Term.Var v -> (
        match Hashtbl.find_opt seen v with
        | Some c -> c
        | None ->
          let c = Term.Var (Printf.sprintf "_%d" (Hashtbl.length seen)) in
          Hashtbl.add seen v c;
          c))
    pattern

type key = string * int * Term.t list

let key ~rel ~pattern = (rel, List.length pattern, canonical_pattern pattern)

module Kmap = Map.Make (struct
  type t = key

  let compare (r1, a1, p1) (r2, a2, p2) =
    match String.compare r1 r2 with
    | 0 -> ( match Int.compare a1 a2 with 0 -> List.compare Term.compare p1 p2 | c -> c)
    | c -> c
end)

(* ------------------------------------------------------------------ *)
(* The cache                                                           *)

type entry = {
  e_tuples : Term.t list list;
  e_deps : int list;  (** dependency component ids, sorted *)
}

type stats = {
  sc_hits : int;
  sc_misses : int;
  sc_entries : int;
  sc_evictions : int;
}

type t = {
  graph : Depgraph.t;
  mentions_acdom : bool;
  (* Component ids: head relations are assigned at [create] from the
     rule components; every other relation (extensional data, possibly
     relations the program never mentions) gets a singleton component
     allocated on first use. *)
  comp_of_rel : (Atom.rel_key, int) Hashtbl.t;
  mutable next_comp : int;
  (* comp id -> epoch of its last invalidation (absent = never). *)
  inval : (int, int) Hashtbl.t;
  deps_memo : (Atom.rel_key, int list) Hashtbl.t;
  mutable entries : entry Kmap.t;
  mutable epoch : int;
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let acdom_key : Atom.rel_key = (Database.acdom_rel, 0, 1)

let create (program : Theory.t) =
  let comp_of_rel = Hashtbl.create 64 in
  let next = ref 0 in
  List.iter
    (fun component ->
      let id = !next in
      incr next;
      Theory.Rel_set.iter
        (fun rk -> Hashtbl.replace comp_of_rel rk id)
        (Theory.head_relations component))
    (Depgraph.rule_components program);
  {
    graph = Depgraph.of_theory program;
    mentions_acdom = Theory.Rel_set.mem acdom_key (Theory.relations program);
    comp_of_rel;
    next_comp = !next;
    inval = Hashtbl.create 16;
    deps_memo = Hashtbl.create 64;
    entries = Kmap.empty;
    epoch = 0;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Called with the mutex held. *)
let comp_id t rk =
  match Hashtbl.find_opt t.comp_of_rel rk with
  | Some id -> id
  | None ->
    let id = t.next_comp in
    t.next_comp <- id + 1;
    Hashtbl.replace t.comp_of_rel rk id;
    id

(* The components a subgoal over [rk] transitively depends on
   (inclusive). Fixed for the life of the cache: the program does not
   change, only the data does. Called with the mutex held. *)
let deps_of t rk =
  match Hashtbl.find_opt t.deps_memo rk with
  | Some deps -> deps
  | None ->
    let reachable = Depgraph.reachable_from t.graph (Theory.Rel_set.singleton rk) in
    let deps =
      Theory.Rel_set.fold (fun r acc -> comp_id t r :: acc) reachable []
      |> List.sort_uniq Int.compare
    in
    Hashtbl.replace t.deps_memo rk deps;
    deps

let epoch t = locked t (fun () -> t.epoch)

let find t key =
  locked t (fun () ->
      match Kmap.find_opt key t.entries with
      | Some e ->
        t.hits <- t.hits + 1;
        Some e.e_tuples
      | None ->
        t.misses <- t.misses + 1;
        None)

let store t ((rel, arity, _) as key) ~epoch tuples =
  locked t (fun () ->
      let deps = deps_of t (rel, 0, arity) in
      let stale =
        List.exists
          (fun c ->
            match Hashtbl.find_opt t.inval c with Some e -> e > epoch | None -> false)
          deps
      in
      if not stale then t.entries <- Kmap.add key { e_tuples = tuples; e_deps = deps } t.entries)

let invalidate t touched =
  locked t (fun () ->
      t.epoch <- t.epoch + 1;
      let comps = List.map (comp_id t) touched in
      let comps =
        if t.mentions_acdom && touched <> [] then comp_id t acdom_key :: comps else comps
      in
      let comps = List.sort_uniq Int.compare comps in
      if comps <> [] then begin
        List.iter (fun c -> Hashtbl.replace t.inval c t.epoch) comps;
        let before = Kmap.cardinal t.entries in
        t.entries <-
          Kmap.filter
            (fun _ e -> not (List.exists (fun c -> List.mem c comps) e.e_deps))
            t.entries;
        t.evictions <- t.evictions + (before - Kmap.cardinal t.entries)
      end)

let stats t =
  locked t (fun () ->
      {
        sc_hits = t.hits;
        sc_misses = t.misses;
        sc_entries = Kmap.cardinal t.entries;
        sc_evictions = t.evictions;
      })
