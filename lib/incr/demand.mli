(** Demand-driven query answering over a stratified Datalog program.

    The materialized serving mode ({!Incr}) computes the whole fixpoint
    up front and maintains it under updates; a {!t} computes nothing up
    front. Each query is rewritten with the generalized magic-set
    transformation ({!Guarded_datalog.Magic}) and evaluated bottom-up
    over the raw EDB, deriving only the facts the query demands; the
    resulting answer sets are memoized in a {!Subgoal_cache} so hot
    subgoals are table lookups and cold relations cost nothing.
    {!apply} commits an update batch by mutating the EDB and evicting
    exactly the cached subgoals whose dependency components the batch
    touched.

    Programs outside the magic fragment (negation, annotated relations)
    fall back to evaluating the full stratified fixpoint on first
    demand, memoized per epoch — correct, but with materialized-mode
    costs. Queries agree with the materialized reference in either
    case; the concurrency discipline is the server's: any number of
    concurrent readers, {!apply} under exclusive access. *)

open Guarded_core

type t

val create : ?pool:Guarded_par.Pool.t -> Theory.t -> Database.t -> t
(** [create sigma edb] copies [edb] and prepares the cache and
    dependency components; no evaluation happens. [?pool] is forwarded
    to every demand evaluation.
    @raise Invalid_argument on existential rules or unstratified
    negation, as {!Incr.materialize}. *)

val program : t -> Theory.t
val pool : t -> Guarded_par.Pool.t option

val edb : t -> Database.t
(** The current raw EDB (updates applied). Read-only. *)

type apply_result = {
  res_added : int;  (** net facts that entered the EDB *)
  res_removed : int;  (** net facts that left the EDB *)
}

val apply : t -> Delta.t -> apply_result
(** Apply one batch: the EDB becomes [(EDB \ deletions) ∪ additions]
    and the subgoal cache is invalidated for the components the
    effective changes touch. No re-evaluation happens until the next
    query demands it. *)

val answers : t -> query:string -> Term.t list list
(** Sorted constant tuples of the [query] relation, matching
    {!Incr.answers} on the materialized reference: EDB facts of that
    name (across arities and annotations) unioned with one all-free
    demanded subgoal per arity the program derives. *)

val pattern_answers : t -> rel:string -> pattern:Term.t list -> Term.t list list
(** Sorted constant tuples of [rel] matching [pattern] (constants
    bound, variables free, repeated variables equated) — one demanded
    subgoal. *)

val cq_answers : t -> body:Atom.t list -> answer_vars:string list -> Term.t list list
(** Conjunctive-query answers as {!Incr.cq_answers}: each intensional
    body atom becomes a demanded subgoal, the join runs over the union
    of the subgoal answers and the relevant EDB relations. *)

val cache_stats : t -> Subgoal_cache.stats
