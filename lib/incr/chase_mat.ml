(** Finite-chase serving: materialize chase(Σ, D) itself.

    The materialized ({!Incr}) and demand ({!Demand}) backends serve an
    existential theory through its Datalog translation. When the
    theory's restricted chase terminates — certified by the
    [Guarded_analysis] deciders or observed by its bounded prover — the
    universal model is finite and can be served directly: this backend
    keeps chase(Σ, EDB) as a {!Database}, with the invented labeled
    nulls resident in the store (hash-consed like every term) and
    filtered out of answers, which are certain answers exactly as in
    the translation backends.

    Commits: an additions-only batch {e continues} the chase from
    [chase ∪ additions] — sound and complete because the chase of that
    instance is again a universal model of (Σ, EDB ∪ additions), and
    the engine allocates fresh nulls past the existing ones. A batch
    with effective deletions re-chases the new EDB from scratch (a
    deleted fact may have supported arbitrary null derivations). Both
    paths build the new state on the side and install it atomically,
    so a budget-exceeded chase leaves the served state unchanged. *)

open Guarded_core
module Engine = Guarded_chase.Engine

exception Nonterminating of {
  budget : int;
  derivations : int;
}

type t = {
  sigma : Theory.t;
  pool : Guarded_par.Pool.t option;
  limits : Engine.limits;
  mutable edb : Database.t;
  mutable chase : Database.t;
  (* Counters for STATS. *)
  mutable derivations : int;  (** cumulative chase derivations *)
  mutable rechases : int;  (** from-scratch chases (creation included) *)
  mutable continuations : int;  (** additions-only chase continuations *)
}

let run_chase t base =
  let res =
    Engine.run ~limits:t.limits ~variant:Engine.Restricted ~record_steps:false ?pool:t.pool
      t.sigma base
  in
  match res.Engine.outcome with
  | Engine.Saturated ->
    t.derivations <- t.derivations + res.Engine.derivations;
    res.Engine.db
  | Engine.Bounded ->
    raise
      (Nonterminating
         { budget = t.limits.Engine.max_derivations; derivations = res.Engine.derivations })

let create ?pool ?(limits = Engine.default_limits) sigma db0 =
  if not (Theory.is_positive sigma) then
    invalid_arg "Chase_mat.create: negation is not supported in chase serving";
  let t =
    {
      sigma;
      pool;
      limits;
      edb = Database.copy db0;
      chase = Database.create ();
      derivations = 0;
      rechases = 0;
      continuations = 0;
    }
  in
  t.chase <- run_chase t t.edb;
  t.rechases <- 1;
  t

let program t = t.sigma
let pool t = t.pool
let edb t = t.edb

let db t = t.chase

type apply_result = {
  res_added : int;  (** net facts that entered the chase *)
  res_removed : int;  (** net facts that left the chase *)
}

let diff_count a b =
  (* |a \ b| *)
  Database.fold (fun atom n -> if Database.mem b atom then n else n + 1) a 0

let apply t (delta : Delta.t) =
  let effective_deletion a =
    Database.mem t.edb a && not (List.exists (Atom.equal a) delta.Delta.additions)
  in
  let old_chase = t.chase in
  if List.exists effective_deletion delta.Delta.deletions then begin
    (* Deletions invalidate null derivations transitively: re-chase the
       new EDB from scratch, on the side. *)
    let edb = Database.copy t.edb in
    List.iter (fun a -> ignore (Database.remove edb a)) delta.Delta.deletions;
    List.iter (fun a -> ignore (Database.add edb a)) delta.Delta.additions;
    let chase = run_chase t edb in
    t.edb <- edb;
    t.chase <- chase;
    t.rechases <- t.rechases + 1;
    { res_added = diff_count chase old_chase; res_removed = diff_count old_chase chase }
  end
  else begin
    (* Additions only: continue the chase from chase ∪ additions — the
       engine numbers fresh nulls past the existing maximum. *)
    let base = Database.copy t.chase in
    List.iter (fun a -> ignore (Database.add base a)) delta.Delta.additions;
    let chase = run_chase t base in
    let edb = Database.copy t.edb in
    List.iter (fun a -> ignore (Database.add edb a)) delta.Delta.additions;
    t.edb <- edb;
    t.chase <- chase;
    t.continuations <- t.continuations + 1;
    { res_added = diff_count chase old_chase; res_removed = 0 }
  end

(* ------------------------------------------------------------------ *)
(* Queries: certain answers = all-constant tuples of the chase.        *)

let answers t ~query = Database.constant_tuples t.chase query

let pattern_answers t ~rel ~pattern =
  let pat = Atom.make rel pattern in
  let out = ref [] in
  Database.iter_candidates t.chase pat (fun fact ->
      if Atom.ann fact = [] then
        match Subst.match_atom Subst.empty pat fact with
        | Some _ when List.for_all Term.is_const (Atom.args fact) ->
          out := Atom.args fact :: !out
        | _ -> ());
  List.sort_uniq (List.compare Term.compare) !out

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

let cq_answers t ~body ~answer_vars =
  let open Guarded_datalog in
  let acc = ref Tuple_set.empty in
  let iter_body k =
    match Planner.plan body with
    | Planner.Binary -> Homomorphism.iter_pos body t.chase k
    | Planner.Wcoj order -> Wcoj.iter_pos ~order body t.chase k
  in
  iter_body (fun subst ->
      let tuple =
        List.map
          (fun v -> match Subst.find_opt v subst with Some tm -> tm | None -> Term.Var v)
          answer_vars
      in
      if List.for_all Term.is_const tuple then acc := Tuple_set.add tuple !acc);
  Tuple_set.elements !acc

(* ------------------------------------------------------------------ *)

type stats = {
  st_nulls : int;  (** distinct labeled nulls resident in the chase *)
  st_derivations : int;  (** cumulative chase derivations *)
  st_rechases : int;
  st_continuations : int;
}

let stats t =
  let seen = Hashtbl.create 64 in
  Database.iter
    (fun a ->
      List.iter
        (function Term.Null n -> Hashtbl.replace seen n () | Term.Const _ | Term.Var _ -> ())
        (Atom.terms a))
    t.chase;
  {
    st_nulls = Hashtbl.length seen;
    st_derivations = t.derivations;
    st_rechases = t.rechases;
    st_continuations = t.continuations;
  }
