(** Update batches: fact insertions and deletions against an EDB.

    A delta is applied with batch semantics — the new EDB is
    [(EDB \ deletions) ∪ additions]; a fact listed on both sides ends
    up present. The textual format is one signed fact per line,
    ["+p(a,b)."] to insert and ["-p(a,b)."] to delete (the trailing dot
    is optional); blank lines and lines starting with [#] or [%] are
    ignored. *)

open Guarded_core

type t = {
  additions : Atom.t list;  (** in submission order *)
  deletions : Atom.t list;  (** in submission order *)
}

val empty : t
val is_empty : t -> bool

val add_fact : t -> Atom.t -> t
(** Queue an insertion. @raise Invalid_argument on a non-ground atom. *)

val remove_fact : t -> Atom.t -> t
(** Queue a deletion. @raise Invalid_argument on a non-ground atom. *)

val of_lists : additions:Atom.t list -> deletions:Atom.t list -> t

val size : t -> int
(** Queued insertions plus queued deletions. *)

val parse_line : string -> Atom.t option * Atom.t option
(** [parse_line s] reads one [+fact]/[-fact] line; returns the atom in
    the first (addition) or second (deletion) slot, or [(None, None)]
    on a blank or comment line.
    @raise Failure on anything else. *)

val of_string : string -> t
(** Parse a batch, one signed fact per line. *)

exception Malformed of { line : int; msg : string }
(** A line of an update file that is neither a signed fact, a comment
    nor blank; [line] is 1-based. *)

val batches_of_string : string -> t list
(** Parse a whole update file into its blank-line-separated batches.
    The entire text is validated before any batch is returned, so a
    malformed line rejects the submission as a unit instead of aborting
    between batches.
    @raise Malformed with the offending line number. *)

val pp : t Fmt.t
(** Prints the batch in its own textual form, quoting constants as
    needed ({!Guarded_core.Atom.pp_quoted}), so [of_string ∘ print] is
    the identity. *)
