(** Tabled subgoal answers for demand-driven serving, invalidated per
    dependency component.

    A cache entry memoizes the answers of one adorned subgoal — a
    relation queried under a pattern whose constants are the bound
    arguments — as computed by the magic-set rewriting over the current
    EDB. Entries are keyed by relation, arity and the canonicalized
    pattern (variables renamed by first occurrence, so [p(X, a, X)] and
    [p(Y, a, Y)] share an entry while [p(X, a, Y)] does not).

    {b Invalidation} is scoped by the program's evaluation components
    ({!Guarded_datalog.Depgraph.rule_components}): at {!create} every
    head relation is assigned its component, every other (extensional)
    relation a singleton component of its own, and each entry records
    the components its subgoal transitively depends on
    ({!Guarded_datalog.Depgraph.reachable_from}). A committed batch
    touching component [C] evicts exactly the entries that reach [C];
    subgoals over untouched components survive the commit. A program
    that mentions [ACDom] adds the active-domain component to every
    commit's touched set, since any EDB change can move the active
    domain.

    {b Epoch discipline}: {!invalidate} advances the cache epoch and
    stamps the touched components with it; {!store} records the epoch
    the computation read and is dropped (not stored) when any of its
    dependency components was invalidated after that epoch. A reader
    that raced a commit can therefore never publish a stale answer set,
    and {!find} only ever sees entries whose components are untouched
    since they were computed. All operations take an internal mutex, so
    concurrent readers may share one cache under the server's shared
    lock. *)

open Guarded_core

type t

type key
(** Relation, arity and canonicalized pattern. *)

val key : rel:string -> pattern:Term.t list -> key

val create : Theory.t -> t
(** Builds the component assignment and dependency graph of the
    program; starts empty, at epoch 0. *)

val epoch : t -> int
(** Commits observed so far; the stamp a computation should pass to
    {!store} is the value read {e before} evaluating. *)

val find : t -> key -> Term.t list list option
(** The memoized answers, or [None]. Counts a hit or a miss. *)

val store : t -> key -> epoch:int -> Term.t list list -> unit
(** Publish the answers computed at [epoch]. Silently dropped when a
    dependency component of the subgoal was invalidated after [epoch] —
    the computation raced a commit and may be stale. *)

val invalidate : t -> Atom.rel_key list -> unit
(** One committed batch touched the given relations: advance the
    epoch and evict every entry whose dependency components intersect
    the touched components (plus the [ACDom] component when the
    program mentions it and the batch is non-empty). *)

type stats = {
  sc_hits : int;
  sc_misses : int;
  sc_entries : int;  (** currently resident *)
  sc_evictions : int;  (** lifetime *)
}

val stats : t -> stats
