(** Incremental maintenance of materialized stratified Datalog.

    State layout. The program's strata — {!Stratify.strata} refined by
    {!Depgraph.rule_components}, so each stratum is one dependency
    component of a negation stratum — each cache an output database
    [st_out] holding the input of the stratum plus everything its rules
    derive; the input [st_in] is a
    shared reference to the previous stratum's [st_out] (the base
    EDB+ACDom database for the first stratum), so by the time stratum
    [i] processes a batch its input has already been updated in place
    and membership tests against [st_in] see the new input. The last
    stratum's output is the served materialization.

    Maintenance strategies, chosen per stratum:

    - {b Counting} (nonrecursive strata). [st_counts] maps each fact to
      its number of derivation instances — ground rule instances with
      all premises in [st_out] and negative literals absent. A fact
      belongs to [st_out] iff it is in [st_in] or its count is
      positive. Insertions and deletions run in rounds over a frontier:
      instances touching the frontier are enumerated with the frontier
      still (already) present via {!Seminaive.iter_seeded_instances},
      deduplicated per round on (rule, premises), and counts are
      adjusted; facts whose support appears or vanishes form the next
      frontier. Rounds never double-count across rounds because a
      frontier is physically applied to [st_out] before the next round
      starts, so an instance is seen exactly in the round of its first
      changed premise. Counting is exact only on nonrecursive strata —
      cyclic derivations can support each other with no grounding in
      the input, which is why recursive strata use DRed.

    - {b DRed} (recursive strata). Deletions overdelete everything
      reachable from the deleted facts (skipping facts still present in
      [st_in]), then rederive: overdeleted facts one-step derivable
      from the surviving database ({!Provenance.derivable_one_step})
      re-enter as seeds of a semi-naive insertion cascade
      ({!Seminaive.delta_insert}), which restores everything else that
      was still derivable. Insertions are a plain delta cascade.

    - {b Fallback}. Negation is semipositive within a stratum, so both
      strategies assume the relations a stratum negates are unchanged.
      When a batch's input delta touches a negated relation the stratum
      is recomputed from scratch over the new input and the diff
      becomes its output delta (counts rebuilt for counting strata).

    ACDom. When the program mentions the built-in active-domain
    relation, the base database holds ACDom(t) for every term of a
    non-ACDom EDB fact (mirroring {!Database.materialize_acdom} on the
    EDB, which is what from-scratch evaluation does) plus any explicit
    ACDom facts of the EDB. Per-term occurrence counts keep that set
    exact under updates, and ACDom changes propagate as ordinary
    stratum-0 input deltas. *)

open Guarded_core
open Guarded_datalog

type stratum = {
  st_theory : Theory.t;
  st_engine : Seminaive.engine;
  st_join : Planner.join_mode;  (** executor choice, for recomputation *)
  st_recursive : bool;  (** DRed when true, counting when false *)
  st_negated : Theory.Rel_set.t;  (** relations negated in this stratum *)
  st_counts : int Atom.Tbl.t;  (** derivation counts (counting strata) *)
  st_in : Database.t;  (** shared with the previous stratum's [st_out] *)
  st_out : Database.t;
}

type t = {
  program : Theory.t;
  edb : Database.t;  (** raw EDB, updates applied *)
  base : Database.t;  (** EDB ∪ ACDom — the first stratum's input *)
  acdom : bool;
  acdom_counts : (int, int) Hashtbl.t;
      (** term id -> number of non-ACDom EDB facts containing the term *)
  acdom_explicit : unit Atom.Tbl.t;  (** ACDom facts of the raw EDB *)
  strata : stratum array;
  pool : Guarded_par.Pool.t option;
}

let program t = t.program
let pool t = t.pool
let edb t = t.edb
let db t = if Array.length t.strata = 0 then t.base else t.strata.(Array.length t.strata - 1).st_out

(* ------------------------------------------------------------------ *)
(* Net output-delta accumulator: a fact removed and later re-added in
   the same batch (rederived, or re-inserted after a cascade) cancels
   out, so downstream strata only see genuine changes. *)

type acc = { acc_added : unit Atom.Tbl.t; acc_removed : unit Atom.Tbl.t }

let acc_create () = { acc_added = Atom.Tbl.create 64; acc_removed = Atom.Tbl.create 64 }

let acc_add acc f =
  if Atom.Tbl.mem acc.acc_removed f then Atom.Tbl.remove acc.acc_removed f
  else Atom.Tbl.replace acc.acc_added f ()

let acc_remove acc f =
  if Atom.Tbl.mem acc.acc_added f then Atom.Tbl.remove acc.acc_added f
  else Atom.Tbl.replace acc.acc_removed f ()

let acc_added acc = Atom.Tbl.fold (fun f () l -> f :: l) acc.acc_added []
let acc_removed acc = Atom.Tbl.fold (fun f () l -> f :: l) acc.acc_removed []

(* Mutations of a stratum's output funnel through these so the
   accumulator stays in sync with the physical database. *)
let out_add st acc f = if Database.add st.st_out f then acc_add acc f
let out_remove st acc f = if Database.remove st.st_out f then acc_remove acc f

(* ------------------------------------------------------------------ *)
(* Support counting (nonrecursive strata)                              *)

let count st f = match Atom.Tbl.find_opt st.st_counts f with None -> 0 | Some n -> n

let adjust_count st f d =
  let n = count st f + d in
  if n = 0 then Atom.Tbl.remove st.st_counts f else Atom.Tbl.replace st.st_counts f n;
  n

let rebuild_counts st =
  Atom.Tbl.reset st.st_counts;
  Seminaive.iter_instances st.st_engine st.st_out (fun _ _ heads ->
      List.iter (fun h -> ignore (adjust_count st h 1)) heads)

(* Instance identity for the per-round dedup: seeded enumeration visits
   an instance once per frontier premise. *)
let instance_key rule_idx premises =
  let n = List.length premises in
  let code = Array.make (n + 1) rule_idx in
  List.iteri (fun i a -> code.(i + 1) <- Atom.id a) premises;
  Rule.Key.make code

(* One frontier round of instance enumeration, deduplicated: calls
   [f heads] once per instance touching [frontier]. *)
let iter_frontier_instances ?pool st ~frontier f =
  let seen = Rule.Key.Tbl.create 64 in
  Seminaive.iter_seeded_instances ?pool st.st_engine ~seed:frontier ~db:st.st_out
    (fun rule_idx premises heads ->
      let key = instance_key rule_idx premises in
      if not (Rule.Key.Tbl.mem seen key) then begin
        Rule.Key.Tbl.add seen key ();
        f heads
      end)

(* Deletion cascade. The round's frontier holds facts that are leaving
   [st_out] but are still physically present; every derivation instance
   using a frontier fact is enumerated (still valid, hence previously
   counted) and its heads lose one unit of support. Only then is the
   frontier removed, so an instance whose premises die in different
   rounds is decremented exactly once — in the round of its
   earliest-removed premise; later rounds cannot see it again because
   that premise is physically gone. *)
let counting_delete ?pool st acc removed_inputs =
  let frontier = Database.create () in
  List.iter
    (fun f -> if Database.mem st.st_out f && count st f = 0 then ignore (Database.add frontier f))
    removed_inputs;
  let current = ref frontier in
  while Database.cardinal !current > 0 do
    let frontier = !current in
    let touched = ref [] in
    iter_frontier_instances ?pool st ~frontier (fun heads ->
        List.iter
          (fun h ->
            ignore (adjust_count st h (-1));
            touched := h :: !touched)
          heads);
    Database.iter (fun f -> out_remove st acc f) frontier;
    let next = Database.create () in
    List.iter
      (fun h ->
        if
          count st h = 0 && Database.mem st.st_out h
          && not (Database.mem st.st_in h)
        then ignore (Database.add next h))
      !touched;
    current := next
  done

(* Insertion cascade, mirror image: the frontier (facts new to
   [st_out]) is added physically first, then every instance touching it
   is counted. An instance whose new premises span several rounds is
   counted once, in the round of its last-added premise — earlier
   rounds cannot see it (the missing premise is not yet present), and a
   later frontier never contains a fact already in [st_out]. *)
let counting_insert ?pool st acc added_inputs =
  let frontier = Database.create () in
  List.iter
    (fun f -> if not (Database.mem st.st_out f) then ignore (Database.add frontier f))
    added_inputs;
  let current = ref frontier in
  while Database.cardinal !current > 0 do
    let frontier = !current in
    Database.iter (fun f -> out_add st acc f) frontier;
    let fresh = ref [] in
    iter_frontier_instances ?pool st ~frontier (fun heads ->
        List.iter
          (fun h ->
            ignore (adjust_count st h 1);
            fresh := h :: !fresh)
          heads);
    let next = Database.create () in
    List.iter
      (fun h -> if not (Database.mem st.st_out h) then ignore (Database.add next h))
      !fresh;
    current := next
  done

(* ------------------------------------------------------------------ *)
(* DRed (recursive strata)                                             *)

(* Overdelete everything reachable from the deleted inputs (facts still
   present in the updated [st_in] are exempt — their support is given),
   then rederive: overdeleted facts with a surviving one-step
   derivation seed a semi-naive insertion cascade that restores every
   fact still derivable. The cascade can only re-add overdeleted facts:
   the database was closed under the rules before the batch, so
   everything derivable from surviving facts was already present. *)
let dred_delete ?pool st acc removed_inputs =
  let overdeleted = ref [] in
  let frontier = Database.create () in
  List.iter
    (fun f -> if Database.mem st.st_out f then ignore (Database.add frontier f))
    removed_inputs;
  let current = ref frontier in
  while Database.cardinal !current > 0 do
    let frontier = !current in
    let next = Database.create () in
    iter_frontier_instances ?pool st ~frontier (fun heads ->
        List.iter
          (fun h ->
            if
              Database.mem st.st_out h
              && (not (Database.mem frontier h))
              && not (Database.mem st.st_in h)
            then ignore (Database.add next h))
          heads);
    Database.iter
      (fun f ->
        out_remove st acc f;
        overdeleted := f :: !overdeleted)
      frontier;
    current := next
  done;
  let seeds =
    List.filter (fun d -> Provenance.derivable_one_step st.st_theory st.st_out d) !overdeleted
  in
  let readded = Seminaive.delta_insert ?pool st.st_engine st.st_out seeds in
  List.iter (fun f -> acc_add acc f) readded

let dred_insert ?pool st acc added_inputs =
  let added = Seminaive.delta_insert ?pool st.st_engine st.st_out added_inputs in
  List.iter (fun f -> acc_add acc f) added

(* ------------------------------------------------------------------ *)
(* Fallback: the batch changed a relation this stratum negates, so the
   incremental strategies (which treat negative literals as static) do
   not apply. Recompute the stratum over its updated input and emit the
   diff. *)

let fallback_recompute ?pool st acc =
  let fresh = Seminaive.eval ~acdom:false ?pool ~join:st.st_join st.st_theory st.st_in in
  let stale =
    Database.fold (fun f l -> if Database.mem fresh f then l else f :: l) st.st_out []
  in
  let news =
    Database.fold (fun f l -> if Database.mem st.st_out f then l else f :: l) fresh []
  in
  List.iter (fun f -> out_remove st acc f) stale;
  List.iter (fun f -> out_add st acc f) news;
  if not st.st_recursive then rebuild_counts st

let touches_negated st facts =
  List.exists (fun f -> Theory.Rel_set.mem (Atom.rel_key f) st.st_negated) facts

(* Process one stratum's input delta (already applied to [st_in]);
   returns whether the fallback path ran. The output delta lands in
   [acc]. *)
let process_stratum ?pool st acc ~ins ~del =
  if touches_negated st ins || touches_negated st del then begin
    fallback_recompute ?pool st acc;
    true
  end
  else begin
    if st.st_recursive then begin
      if del <> [] then dred_delete ?pool st acc del;
      if ins <> [] then dred_insert ?pool st acc ins
    end
    else begin
      if del <> [] then counting_delete ?pool st acc del;
      if ins <> [] then counting_insert ?pool st acc ins
    end;
    false
  end

(* ------------------------------------------------------------------ *)
(* ACDom maintenance                                                   *)

let acdom_key = (Database.acdom_rel, 0, 1)
let is_acdom_fact f = Atom.rel_key f = acdom_key

let term_count t tm = match Hashtbl.find_opt t.acdom_counts (Term.id tm) with None -> 0 | Some n -> n

let adjust_term_count t tm d =
  let n = term_count t tm + d in
  if n = 0 then Hashtbl.remove t.acdom_counts (Term.id tm)
  else Hashtbl.replace t.acdom_counts (Term.id tm) n;
  n

(* Base-level delta of one EDB change set: non-ACDom facts pass
   through, ACDom membership changes are derived from the per-term
   occurrence counts and the explicit-fact set. Deletions are processed
   before additions; a term that loses and regains support emits a
   remove/add pair that the caller's accumulator cancels. *)
let base_deltas t ~eff_ins ~eff_del =
  if not t.acdom then (eff_ins, eff_del)
  else begin
    let ins = ref [] and del = ref [] in
    List.iter
      (fun f ->
        if is_acdom_fact f then begin
          Atom.Tbl.remove t.acdom_explicit f;
          match Atom.args f with
          | [ tm ] -> if term_count t tm = 0 then del := f :: !del
          | _ -> ()
        end
        else begin
          del := f :: !del;
          Term.Set.iter
            (fun tm ->
              if adjust_term_count t tm (-1) = 0 then begin
                let af = Atom.make Database.acdom_rel [ tm ] in
                if not (Atom.Tbl.mem t.acdom_explicit af) then del := af :: !del
              end)
            (Atom.term_set f)
        end)
      eff_del;
    List.iter
      (fun f ->
        if is_acdom_fact f then begin
          Atom.Tbl.replace t.acdom_explicit f ();
          ins := f :: !ins
        end
        else begin
          ins := f :: !ins;
          Term.Set.iter
            (fun tm ->
              if adjust_term_count t tm 1 = 1 then
                ins := Atom.make Database.acdom_rel [ tm ] :: !ins)
            (Atom.term_set f)
        end)
      eff_ins;
    (List.rev !ins, List.rev !del)
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let negated_relations (sigma : Theory.t) =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc a -> Theory.Rel_set.add (Atom.rel_key a) acc)
        acc (Rule.neg_body_atoms r))
    Theory.Rel_set.empty (Theory.rules sigma)

let build_strata ?pool ?(join = `Auto) (sigma : Theory.t) (base : Database.t) =
  let prev = ref base in
  (* Refine each negation stratum into dependency components so the
     delete/rederive strategy (and the negation fallback) pays only for
     the component that is actually recursive (resp. touched): one
     recursive rule must not force DRed on the whole program. The
     concatenation is still dependencies-first, so the chaining below
     is unaffected. *)
  Stratify.strata sigma
  |> List.concat_map Depgraph.rule_components
  |> List.map (fun th ->
         let st_in = !prev in
         let st_out = Seminaive.eval ~acdom:false ?pool ~join th st_in in
         let st =
           {
             st_theory = th;
             st_engine = Seminaive.engine ~join th;
             st_join = join;
             st_recursive = Depgraph.is_recursive th;
             st_negated = negated_relations th;
             st_counts = Atom.Tbl.create 256;
             st_in;
             st_out;
           }
         in
         if not st.st_recursive then rebuild_counts st;
         prev := st_out;
         st)
  |> Array.of_list

(* The EDB-derived parts of the state — the base database and the
   ACDom bookkeeping — shared by [materialize] and [restore]. *)
let make_shell ?pool (sigma : Theory.t) (db0 : Database.t) =
  Seminaive.check_datalog sigma;
  if not (Stratify.is_stratified sigma) then
    invalid_arg "Incr.materialize: program is not stratified";
  let edb = Database.copy db0 in
  let acdom = Seminaive.mentions_acdom sigma in
  let acdom_counts = Hashtbl.create 256 in
  let acdom_explicit = Atom.Tbl.create 16 in
  let base = Database.copy edb in
  if acdom then begin
    Database.iter
      (fun f ->
        if is_acdom_fact f then Atom.Tbl.replace acdom_explicit f ()
        else
          Term.Set.iter
            (fun tm ->
              Hashtbl.replace acdom_counts (Term.id tm)
                (1 + Option.value ~default:0 (Hashtbl.find_opt acdom_counts (Term.id tm))))
            (Atom.term_set f))
      edb;
    Database.materialize_acdom base
  end;
  {
    program = sigma;
    edb;
    base;
    acdom;
    acdom_counts;
    acdom_explicit;
    strata = [||];
    pool;
  }

let materialize ?pool ?join (sigma : Theory.t) (db0 : Database.t) =
  let t = make_shell ?pool sigma db0 in
  { t with strata = build_strata ?pool ?join sigma t.base }

(* ------------------------------------------------------------------ *)
(* Snapshot support: the cached state as plain data                    *)

type stratum_dump = {
  sd_new : Atom.t list;  (** output facts beyond the stratum's input *)
  sd_counts : (Atom.t * int) list;  (** derivation counts; [] on DRed strata *)
}

type dump = {
  d_edb : Database.t;
  d_strata : stratum_dump list;
}

let dump t =
  let strata =
    Array.to_list t.strata
    |> List.map (fun st ->
           let sd_new =
             Database.fold
               (fun f l -> if Database.mem st.st_in f then l else f :: l)
               st.st_out []
             |> List.sort Atom.compare
           in
           let sd_counts =
             Atom.Tbl.fold (fun f n l -> (f, n) :: l) st.st_counts []
             |> List.sort (fun (a, _) (b, _) -> Atom.compare a b)
           in
           { sd_new; sd_counts })
  in
  { d_edb = Database.copy t.edb; d_strata = strata }

(* Rebuild a materialization from dumped state without re-running any
   fixpoint: the strata are re-derived from the program (they are a
   function of it), their outputs replayed from the dump, and the
   ACDom/base bookkeeping recomputed from the EDB exactly as
   [materialize] does. Trusts the dump to be the program's fixpoint —
   integrity is the snapshot layer's checksum's job. *)
let restore ?pool ?(join = `Auto) (sigma : Theory.t) (d : dump) =
  let t = make_shell ?pool sigma d.d_edb in
  let theories = Stratify.strata sigma |> List.concat_map Depgraph.rule_components in
  if List.length theories <> List.length d.d_strata then
    invalid_arg
      (Fmt.str "Incr.restore: dump has %d strata, the program needs %d"
         (List.length d.d_strata) (List.length theories));
  let prev = ref t.base in
  let strata =
    List.map2
      (fun th sd ->
        let st_in = !prev in
        let st_out = Database.copy st_in in
        List.iter (fun f -> ignore (Database.add st_out f)) sd.sd_new;
        let st =
          {
            st_theory = th;
            st_engine = Seminaive.engine ~join th;
            st_join = join;
            st_recursive = Depgraph.is_recursive th;
            st_negated = negated_relations th;
            st_counts = Atom.Tbl.create 256;
            st_in;
            st_out;
          }
        in
        List.iter (fun (f, n) -> Atom.Tbl.replace st.st_counts f n) sd.sd_counts;
        prev := st_out;
        st)
      theories d.d_strata
    |> Array.of_list
  in
  { t with strata }

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

type apply_result = {
  res_added : int;
  res_removed : int;
  res_fallback_strata : int;
}

(* Net-effective EDB change of a batch under (EDB \ D) ∪ A semantics:
   deletions that hit a present fact not re-added, additions of absent
   facts — each deduplicated. *)
let effective_changes edb (delta : Delta.t) =
  let in_additions = Atom.Tbl.create 16 in
  List.iter (fun f -> Atom.Tbl.replace in_additions f ()) delta.Delta.additions;
  let seen_del = Atom.Tbl.create 16 in
  let eff_del =
    List.filter
      (fun f ->
        Database.mem edb f
        && (not (Atom.Tbl.mem in_additions f))
        &&
        if Atom.Tbl.mem seen_del f then false
        else begin
          Atom.Tbl.replace seen_del f ();
          true
        end)
      delta.Delta.deletions
  in
  let seen_ins = Atom.Tbl.create 16 in
  let eff_ins =
    List.filter
      (fun f ->
        (not (Database.mem edb f))
        &&
        if Atom.Tbl.mem seen_ins f then false
        else begin
          Atom.Tbl.replace seen_ins f ();
          true
        end)
      delta.Delta.additions
  in
  (eff_ins, eff_del)

let apply t (delta : Delta.t) =
  let eff_ins, eff_del = effective_changes t.edb delta in
  List.iter (fun f -> ignore (Database.remove t.edb f)) eff_del;
  List.iter (fun f -> ignore (Database.add t.edb f)) eff_ins;
  let base_ins, base_del = base_deltas t ~eff_ins ~eff_del in
  let acc0 = acc_create () in
  List.iter (fun f -> if Database.remove t.base f then acc_remove acc0 f) base_del;
  List.iter (fun f -> if Database.add t.base f then acc_add acc0 f) base_ins;
  let fallbacks = ref 0 in
  let final =
    Array.fold_left
      (fun acc st ->
        let ins = acc_added acc and del = acc_removed acc in
        let acc' = acc_create () in
        if process_stratum ?pool:t.pool st acc' ~ins ~del then incr fallbacks;
        acc')
      acc0 t.strata
  in
  {
    res_added = Atom.Tbl.length final.acc_added;
    res_removed = Atom.Tbl.length final.acc_removed;
    res_fallback_strata = !fallbacks;
  }

let refresh t =
  (* Rebuild each stratum's output in place (the databases are shared
     down the chain, so the objects must survive) and its counts. *)
  Array.iter
    (fun st ->
      let acc = acc_create () in
      fallback_recompute ?pool:t.pool st acc)
    t.strata

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let answers t ~query = Database.constant_tuples (db t) query

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

let cq_answers t ~body ~answer_vars =
  let database = db t in
  let acc = ref Tuple_set.empty in
  let iter_body k =
    match Planner.plan body with
    | Planner.Binary -> Homomorphism.iter_pos body database k
    | Planner.Wcoj order -> Wcoj.iter_pos ~order body database k
  in
  iter_body (fun subst ->
      let tuple =
        List.map
          (fun v -> match Subst.find_opt v subst with Some tm -> tm | None -> Term.Var v)
          answer_vars
      in
      if List.for_all Term.is_const tuple then acc := Tuple_set.add tuple !acc);
  Tuple_set.elements !acc
