(** Chase trees (Definitions 5-6) and the properties of Proposition 2.

    Replaying the derivation order of a chase of a normal
    frontier-guarded theory, atoms are placed into a tree whose root
    holds the input database (plus the theory's fact rules) and whose
    non-root nodes hold atoms over at most [m] terms (the maximal
    relation arity): an atom whose terms already live together goes to
    the unique C-minimal node (C1), otherwise it opens a child under the
    minimal node covering the fired rule's frontier image (C2). *)

open Guarded_core

type node
type t

val build : Theory.t -> Database.t -> Engine.result -> t
(** [build sigma db result] replays [result.steps] into a chase tree.
    [sigma] must be normal and frontier-guarded for the Prop. 2
    guarantees to hold. *)

val root : t -> node
val nodes : t -> node list
val node_count : t -> int

val node_atoms : node -> Atom.Set.t
val node_terms : node -> Term.Set.t
val node_children : node -> node list
val node_parent : node -> node option
val is_root : node -> bool

val minimal_nodes : t -> Term.Set.t -> node list
(** The C-minimal nodes for a term set (Def. 5); Prop. 2 (P3) promises
    at most one for frontier-guarded chases. *)

val width : t -> int
(** Width of the induced tree decomposition (max node terms - 1). *)

val depth : t -> int

type violation = string

val verify : t -> Theory.t -> Database.t -> (unit, violation list) result
(** Checks (P1) root size, (P2) non-root arity bound, (P3) uniqueness of
    minimal nodes, and connectedness of the decomposition. *)

val pp : t Fmt.t
