(** The (oblivious) chase of a database w.r.t. a theory.

    Following the paper's preliminaries, the oblivious chase fires every
    rule on every body homomorphism exactly once, inventing a fresh
    labeled null for each existential variable. The chase is fair (a
    breadth-first round structure guarantees condition (c) of the
    definition) and potentially infinite, so runs are bounded by a
    derivation budget and, optionally, by the nesting depth of invented
    nulls. A run reports whether it saturated (no applicable trigger
    remained, hence the result is the full universal solution) or hit a
    bound (the result is a sound under-approximation).

    Only positive rules are supported here; stratified negation has its
    own evaluation in [Guarded_datalog.Stratified]. *)

open Guarded_core

type outcome =
  | Saturated  (** no trigger left: the result is chase(Σ, D) itself *)
  | Bounded  (** a resource limit was hit: sound under-approximation *)

(* One chase step: the fired rule, the body homomorphism (extended with
   the null assignment for existential variables) and the added atoms. *)
type step = {
  rule : Rule.t;
  assignment : Subst.t;
  added : Atom.t list;
}

type result = {
  db : Database.t;
  outcome : outcome;
  derivations : int;
  steps : step list;  (** in derivation order *)
}

type limits = {
  max_derivations : int;
  max_depth : int option;  (** bound on null nesting depth *)
}

let default_limits = { max_derivations = 100_000; max_depth = None }

(* How to interpret negative body literals. [Reject] refuses them (the
   plain chase of the paper's Sections 2-7 is positive); [Snapshot db]
   implements the stratified semantics of Def. 23: [not A(~t)] holds iff
   the instantiated tuple ranges over the terms of [db] and [A(~t)] is
   absent from [db] — exactly membership of [Ā(~t)] in S'_{i-1}. *)
type negation =
  | Reject
  | Snapshot of Database.t

let check_positive sigma =
  List.iter
    (fun r ->
      if not (Rule.is_positive r) then
        invalid_arg
          (Fmt.str "Chase.run: rule with negation not supported: %a" Rule.pp r))
    (Theory.rules sigma)

(* Key identifying a trigger: the rule index and the canonical image of
   its universal variables, as interned term ids (no string building in
   the hot trigger-dedup path). *)
let trigger_key idx uvars subst =
  let img =
    List.map
      (fun v -> match Subst.find_opt v subst with Some t -> Term.id t | None -> -1)
      uvars
  in
  (idx, img)

(* Chase variants: the oblivious chase of the paper fires every trigger
   once; the restricted (standard) chase skips a trigger whose head is
   already satisfied by an extension of the body homomorphism. The
   restricted chase terminates on many theories whose oblivious chase
   diverges and has the same certain answers (both produce universal
   models). *)
type variant =
  | Oblivious
  | Restricted

let run ?(limits = default_limits) ?(negation = Reject) ?(variant = Oblivious)
    ?(record_steps = true) ?pool (sigma : Theory.t) (db0 : Database.t) =
  let snapshot_terms, snapshot =
    match negation with
    | Reject ->
      check_positive sigma;
      (Term.Set.empty, None)
    | Snapshot snap ->
      let terms =
        Database.fold
          (fun a acc -> List.fold_left (fun acc t -> Term.Set.add t acc) acc (Atom.terms a))
          snap Term.Set.empty
      in
      (terms, Some snap)
  in
  let negatives_hold r subst =
    match snapshot with
    | None -> true
    | Some snap ->
      List.for_all
        (fun a ->
          let a' = Subst.apply_atom subst a in
          if not (Atom.is_ground a') then
            invalid_arg (Fmt.str "Chase.run: unsafe negative literal %a" Atom.pp a');
          List.for_all (fun t -> Term.Set.mem t snapshot_terms) (Atom.terms a')
          && not (Database.mem snap a'))
        (Rule.neg_body_atoms r)
  in
  let db = Database.copy db0 in
  let fired : (int * int list, unit) Hashtbl.t = Hashtbl.create 1024 in
  let null_depth : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next_null =
    ref
      (1
      + Database.fold
          (fun a acc ->
            List.fold_left
              (fun acc t -> match t with Term.Null n -> max acc n | Term.Const _ | Term.Var _ -> acc)
              acc (Atom.terms a))
          db 0)
  in
  let term_depth = function
    | Term.Null n -> ( match Hashtbl.find_opt null_depth n with Some d -> d | None -> 0)
    | Term.Const _ | Term.Var _ -> 0
  in
  let steps = ref [] in
  (* Atoms added during the current round, feeding the next semi-naive
     delta. Kept separately from [steps] so [record_steps:false] can
     drop the step log without breaking round bookkeeping. *)
  let round_added = ref [] in
  let derivations = ref 0 in
  let truncated = ref false in
  let rules = Array.of_list (Theory.rules sigma) in
  (* Per-rule precomputation for trigger enumeration: the universal
     variables (for trigger keys) and, for every body position, the
     anchor atom with the rest of the body — hoisted out of the
     per-fact delta loops. *)
  let rule_uvars = Array.map (fun r -> Names.Sset.elements (Rule.uvars r)) rules in
  let rule_anchors =
    Array.map
      (fun r ->
        let body = Rule.body_atoms r in
        (body, List.mapi (fun i a -> (a, List.filteri (fun j _ -> j <> i) body)) body))
      rules
  in
  (* Fire one trigger; returns true if the database grew. Null nesting
     depths are only tracked when a depth bound is set — without one the
     body image would be hash-consed per fire just to be discarded. *)
  let track_depth = limits.max_depth <> None in
  let fire r subst =
    let depth =
      if not track_depth then 0
      else
        List.fold_left
          (fun d a ->
            let a' = Subst.apply_atom subst a in
            List.fold_left (fun d t -> max d (term_depth t)) d (Atom.terms a'))
          0 (Rule.body_atoms r)
    in
    let within_depth =
      match limits.max_depth with None -> true | Some k -> depth < k
    in
    if (not within_depth) && not (Names.Sset.is_empty (Rule.evars r)) then begin
      truncated := true;
      false
    end
    else begin
      let assignment =
        Names.Sset.fold
          (fun v acc ->
            let n = !next_null in
            incr next_null;
            Hashtbl.replace null_depth n (depth + 1);
            Subst.add v (Term.Null n) acc)
          (Rule.evars r) subst
      in
      let added =
        List.filter (fun a -> Database.add db a) (Subst.apply_atoms assignment (Rule.head r))
      in
      incr derivations;
      if record_steps then steps := { rule = r; assignment; added } :: !steps;
      round_added := List.rev_append added !round_added;
      added <> []
    end
  in
  (* Semi-naive rounds: after the first full enumeration, a rule only
     re-fires on joins anchored in a fact added during the previous
     round. This keeps fairness (condition (c) of the chase definition)
     while avoiding the quadratic re-enumeration of old triggers. *)
  (* Restricted chase: the trigger is inactive when the head already
     has an image extending the homomorphism. Satisfaction is monotone,
     so a skipped trigger may safely be marked as fired. *)
  let head_satisfied r subst =
    match variant with
    | Oblivious -> false
    | Restricted -> Homomorphism.exists ~init:subst (Rule.head r) db
  in
  let consider idx r new_trigger subst =
    if !derivations < limits.max_derivations then begin
      let key = trigger_key idx rule_uvars.(idx) subst in
      if (not (Hashtbl.mem fired key)) && negatives_hold r subst then begin
        Hashtbl.add fired key ();
        if not (head_satisfied r subst) then begin
          ignore (fire r subst);
          new_trigger := true
        end
      end
    end
    else truncated := true
  in
  let fire_round ~delta =
    let new_trigger = ref false in
    Array.iteri
      (fun idx r ->
        if !derivations < limits.max_derivations then begin
          let body, anchors = rule_anchors.(idx) in
          match delta with
          | None ->
            (* first round: full enumeration *)
            Homomorphism.iter_pos body db (consider idx r new_trigger)
          | Some delta ->
            List.iter
              (fun (anchor, rest) ->
                if Database.rel_cardinal delta (Atom.rel_key anchor) > 0 then
                  Database.iter_candidates delta anchor (fun fact ->
                      match Subst.match_atom Subst.empty anchor fact with
                      | None -> ()
                      | Some subst ->
                        Homomorphism.iter_pos ~init:subst rest db
                          (consider idx r new_trigger)))
              anchors
        end
        else truncated := true)
      rules;
    !new_trigger
  in
  (* Parallel rounds: trigger *enumeration* fans out over the pool —
     each work unit (a whole rule in the first round, a (rule, anchor)
     pair in delta rounds) collects its body homomorphisms against the
     database as it stood at the round barrier into a private buffer —
     while *application* stays sequential, replaying the buffers in
     canonical (rule, anchor, enumeration) order through [consider].
     Null ids are allocated during application only, so labeled-null
     invention is deterministic: a round's trigger list is a function
     of (db, delta) and the canonical order alone, independent of the
     domain count and of scheduling. Relative to the sequential
     schedule, a trigger whose body uses a fact added earlier in the
     same round fires one round later (it re-enters through the delta),
     so null ids may differ from the no-pool run by a renaming — the
     chase results are isomorphic, with identical derivation counts and
     constant answers. *)
  let enumerate_unit (idx, anchor_opt, delta) =
    let acc = ref [] in
    (match anchor_opt with
    | None ->
      let body, _ = rule_anchors.(idx) in
      Homomorphism.iter_pos body db (fun subst -> acc := subst :: !acc)
    | Some (anchor, rest) ->
      Database.iter_candidates delta anchor (fun fact ->
          match Subst.match_atom Subst.empty anchor fact with
          | None -> ()
          | Some subst -> Homomorphism.iter_pos ~init:subst rest db (fun s -> acc := s :: !acc)));
    (idx, List.rev !acc)
  in
  let fire_round_parallel pool ~delta =
    let new_trigger = ref false in
    let units =
      match delta with
      | None -> Array.init (Array.length rules) (fun idx -> (idx, None, db))
      | Some delta ->
        let acc = ref [] in
        Array.iteri
          (fun idx _ ->
            let _, anchors = rule_anchors.(idx) in
            List.iter
              (fun (anchor, rest) ->
                if Database.rel_cardinal delta (Atom.rel_key anchor) > 0 then
                  acc := (idx, Some (anchor, rest), delta) :: !acc)
              anchors)
          rules;
        Array.of_list (List.rev !acc)
    in
    (* Unit count is the dispatch width, not the work: gate the fan-out
       on the facts this round's units will actually scan. *)
    let work =
      match delta with
      | None -> Database.cardinal db
      | Some delta -> Database.cardinal delta
    in
    let min_work = if work >= Guarded_par.Pool.min_work pool then 1 else max_int in
    let buffers = Guarded_par.Pool.parallel_map ~min_work (Some pool) enumerate_unit units in
    Array.iter
      (fun (idx, substs) ->
        List.iter (fun subst -> consider idx rules.(idx) new_trigger subst) substs)
      buffers;
    !new_trigger
  in
  let fire_round ~delta =
    match pool with
    | None -> fire_round ~delta
    | Some pool -> fire_round_parallel pool ~delta
  in
  let rec rounds ~delta =
    if !derivations >= limits.max_derivations then truncated := true
    else begin
      round_added := [];
      ignore (fire_round ~delta);
      (* The next delta: everything added during this round. *)
      let next_delta = Database.create () in
      List.iter (fun a -> ignore (Database.add next_delta a)) !round_added;
      if Database.cardinal next_delta > 0 then rounds ~delta:(Some next_delta)
    end
  in
  rounds ~delta:None;
  {
    db;
    outcome = (if !truncated then Bounded else Saturated);
    derivations = !derivations;
    steps = List.rev !steps;
  }

(* Three-valued entailment of a ground atom under a bounded chase. *)
type verdict =
  | Proved
  | Disproved
  | Unknown  (** the bounded chase neither derived the atom nor saturated *)

let entails ?limits ?pool sigma db atom =
  if not (Atom.is_ground atom) then invalid_arg "Chase.entails: atom must be ground";
  let res = run ?limits ?pool sigma db in
  if Database.mem res.db atom then Proved
  else match res.outcome with Saturated -> Disproved | Bounded -> Unknown

(* ans((Σ, Q), D): constant tuples ~c with Q(~c) in the chase. Sound and,
   when the run saturates, complete. *)
let answers ?limits ?pool sigma db ~query =
  let res = run ?limits ?pool sigma db in
  (Database.constant_tuples res.db query, res.outcome)
