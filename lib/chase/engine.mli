(** The (oblivious) chase of a database w.r.t. a theory (Section 2).

    The oblivious chase fires every rule on every body homomorphism
    exactly once, inventing a fresh labeled null per existential
    variable. Rounds are semi-naive (new triggers are anchored in the
    facts of the previous round) and fair, satisfying condition (c) of
    the chase definition. Runs are bounded by a derivation budget and,
    optionally, by the nesting depth of invented nulls: a [Saturated]
    outcome means the result is chase(Σ, D) itself; [Bounded] means a
    sound under-approximation. *)

open Guarded_core

type outcome =
  | Saturated
  | Bounded

type step = {
  rule : Rule.t;
  assignment : Subst.t;
      (** the body homomorphism extended with the null assignment *)
  added : Atom.t list;
}

type result = {
  db : Database.t;
  outcome : outcome;
  derivations : int;
  steps : step list;  (** in derivation order *)
}

type limits = {
  max_derivations : int;
  max_depth : int option;  (** bound on null nesting depth *)
}

val default_limits : limits

(** Interpretation of negative body literals. [Reject] refuses them;
    [Snapshot db] implements the stratified semantics of Def. 23:
    [not A(~t)] holds iff the tuple ranges over the terms of [db] and
    [A(~t)] is absent from [db]. *)
type negation =
  | Reject
  | Snapshot of Database.t

(** Chase variants: [Oblivious] (the paper's, default) fires every
    trigger once; [Restricted] skips triggers whose head is already
    satisfied by an extension of the body homomorphism — it terminates
    on many theories whose oblivious chase diverges, with the same
    certain answers (both results are universal models). *)
type variant =
  | Oblivious
  | Restricted

val run :
  ?limits:limits ->
  ?negation:negation ->
  ?variant:variant ->
  ?record_steps:bool ->
  ?pool:Guarded_par.Pool.t ->
  Theory.t ->
  Database.t ->
  result
(** [?record_steps] (default [true]) controls whether the per-trigger
    [step] log is kept; pass [false] when only the final database and
    counters matter (bulk materialization, termination probing) to cut
    peak heap — [steps] is then [[]].

    With [?pool], each round's trigger enumeration is partitioned over
    the pool's domains against the round-barrier snapshot of the
    database, while trigger application (dedup, negation check, null
    invention, fact insertion) replays sequentially in canonical order
    — so labeled-null allocation and the derivation order are
    deterministic: identical for every domain count and across repeated
    runs. Relative to the default sequential schedule the chase result
    can differ by a renaming of nulls (a trigger using a fact added
    earlier in the same round fires one round later), with the same
    derivation count, fact count and constant answers on saturated
    runs. [None] (default) keeps the sequential schedule unchanged. *)

type verdict =
  | Proved
  | Disproved
  | Unknown  (** the bounded chase neither derived the atom nor saturated *)

val entails :
  ?limits:limits -> ?pool:Guarded_par.Pool.t -> Theory.t -> Database.t -> Atom.t -> verdict

val answers :
  ?limits:limits ->
  ?pool:Guarded_par.Pool.t ->
  Theory.t ->
  Database.t ->
  query:string ->
  Term.t list list * outcome
(** ans((Σ, Q), D): constant tuples with Q(~c) in the chase; complete
    exactly when the run saturates. *)
