(** Chase trees (Definitions 5-6) and the properties of Proposition 2.

    Replaying the derivation order of a chase of a normal
    frontier-guarded theory, atoms are placed into a tree whose root
    holds the input database (plus the fact rules of the theory) and
    whose non-root nodes hold atoms over at most [m] terms, where [m] is
    the maximal relation arity. The placement follows (C1)/(C2): an atom
    whose terms already live together in some node goes to the unique
    minimal such node, otherwise it opens a new child under the minimal
    node covering the image of the fired rule's frontier.

    A term-to-holders index (keyed on interned terms) backs the
    C-minimality queries: the nodes containing a term set are found by
    filtering the — typically short — holder list of one of its terms
    instead of scanning every node of the tree, and the (P3) and
    connectedness checks walk the index once instead of crossing all
    terms with all nodes. *)

open Guarded_core

type node = {
  id : int;
  parent : node option;
  mutable atoms : Atom.Set.t;
  mutable terms : Term.Set.t;
  mutable children : node list;
}

type t = {
  root : node;
  mutable nodes : node list;  (** all nodes, most recent first *)
  mutable next_id : int;
  holders : node list ref Term.Tbl.t;
      (** term -> nodes whose term set contains it, most recent first *)
}

let root t = t.root
let nodes t = List.rev t.nodes
let node_count t = List.length t.nodes

let node_atoms n = n.atoms
let node_terms n = n.terms
let node_children n = n.children
let node_parent n = n.parent
let is_root n = n.parent = None

let atom_terms a = Term.Set.of_list (Atom.terms a)

let register t n term =
  match Term.Tbl.find_opt t.holders term with
  | Some r -> r := n :: !r
  | None -> Term.Tbl.add t.holders term (ref [ n ])

let holders_of t term =
  match Term.Tbl.find_opt t.holders term with Some r -> !r | None -> []

(* Add [a] to [n], indexing the terms new to [n]. *)
let add_atom_to_node t n a =
  n.atoms <- Atom.Set.add a n.atoms;
  List.iter
    (fun term ->
      if not (Term.Set.mem term n.terms) then begin
        n.terms <- Term.Set.add term n.terms;
        register t n term
      end)
    (Atom.terms a)

let create_root atoms =
  let root =
    { id = 0; parent = None; atoms = Atom.Set.empty; terms = Term.Set.empty; children = [] }
  in
  let t = { root; nodes = [ root ]; next_id = 1; holders = Term.Tbl.create 256 } in
  List.iter (add_atom_to_node t root) atoms;
  t

(* All nodes of the tree that contain the term set [c]: filter the
   holders of one term of [c] (every containing node is among them). *)
let nodes_containing t c =
  match Term.Set.choose_opt c with
  | None -> t.nodes
  | Some term -> List.filter (fun n -> Term.Set.subset c n.terms) (holders_of t term)

(* The C-minimal nodes: containing [c], with no parent containing [c].
   Proposition 2 (P3) promises at most one; we expose the list so the
   test-suite can check the promise. *)
let minimal_nodes t c =
  List.filter
    (fun n ->
      match n.parent with
      | None -> true
      | Some p -> not (Term.Set.subset c p.terms))
    (nodes_containing t c)

let minimal_node t c =
  match minimal_nodes t c with
  | [] -> None
  | [ n ] -> Some n
  | n :: _ as all ->
    (* Should not happen for frontier-guarded chases (P3); pick the
       shallowest deterministically but record the anomaly. *)
    ignore all;
    Some n

let new_child t parent atom =
  let n =
    {
      id = t.next_id;
      parent = Some parent;
      atoms = Atom.Set.singleton atom;
      terms = atom_terms atom;
      children = [];
    }
  in
  t.next_id <- t.next_id + 1;
  parent.children <- n :: parent.children;
  t.nodes <- n :: t.nodes;
  Term.Set.iter (fun term -> register t n term) n.terms;
  n

(* Insert one chase consequence [atom] derived by [rule] under body
   homomorphism [assignment] (C1/C2 of Def. 6). *)
let insert t rule assignment atom =
  let c = atom_terms atom in
  match minimal_node t c with
  | Some n -> add_atom_to_node t n atom
  | None ->
    let frontier_img =
      Names.Sset.fold
        (fun v acc ->
          match Subst.find_opt v assignment with
          | Some term -> Term.Set.add term acc
          | None -> acc)
        (Rule.fvars rule) Term.Set.empty
    in
    let parent =
      match minimal_node t frontier_img with
      | Some n -> n
      | None -> t.root
    in
    ignore (new_child t parent atom)

(* Build the chase tree of [db] w.r.t. the normal frontier-guarded
   theory [sigma] by replaying the steps of a chase run. *)
let build (sigma : Theory.t) (db : Database.t) (res : Engine.result) =
  let fact_atoms =
    List.concat_map
      (fun r -> if Rule.body r = [] && Rule.is_datalog r then Rule.head r else [])
      (Theory.rules sigma)
  in
  let t = create_root (Database.to_list db @ fact_atoms) in
  List.iter
    (fun (step : Engine.step) ->
      List.iter (fun a -> insert t step.rule step.assignment a) step.added)
    res.steps;
  t

(* Width of the induced tree decomposition: max terms per node, minus one
   by the usual convention. *)
let width t = List.fold_left (fun acc n -> max acc (Term.Set.cardinal n.terms)) 0 t.nodes - 1

let depth t =
  let rec go n = 1 + List.fold_left (fun acc c -> max acc (go c)) (-1) n.children in
  go t.root


(* --- Proposition 2 checks ------------------------------------------------ *)

type violation = string

(* (P1): |terms(d0)| <= |terms(D)| + k, with k the constants in Σ rules. *)
let check_p1 t sigma db : violation list =
  let d_terms =
    Database.fold (fun a acc -> Term.Set.union acc (atom_terms a)) db Term.Set.empty
  in
  let k = Names.Sset.cardinal (Theory.constants sigma) in
  let bound = Term.Set.cardinal d_terms + k in
  if Term.Set.cardinal t.root.terms <= bound then []
  else [ Fmt.str "P1 violated: root has %d terms > %d" (Term.Set.cardinal t.root.terms) bound ]

(* (P2): non-root nodes carry at most m terms (m = max arity). *)
let check_p2 t sigma : violation list =
  let m = Theory.max_arity sigma in
  List.filter_map
    (fun n ->
      if is_root n || Term.Set.cardinal n.terms <= m then None
      else Some (Fmt.str "P2 violated: node %d has %d terms > arity bound %d" n.id (Term.Set.cardinal n.terms) m))
    t.nodes

(* Per-term minimal holders: the nodes containing [term] whose parent
   does not — one pass over the holders index instead of crossing every
   term with every node. *)
let term_roots term holders =
  List.filter
    (fun n ->
      match n.parent with
      | None -> true
      | Some p -> not (Term.Set.mem term p.terms))
    holders

(* (P3): for each node's term set, the minimal node is unique. We check
   uniqueness for every singleton {t} (the index domain is exactly the
   terms occurring in some node). *)
let check_p3 t : violation list =
  Term.Tbl.fold
    (fun term r acc ->
      match term_roots term !r with
      | [] | [ _ ] -> acc
      | l -> Fmt.str "P3 violated: term %a has %d minimal nodes" Term.pp term (List.length l) :: acc)
    t.holders []

(* Connectedness of the decomposition: nodes containing a term form a
   connected subtree (equivalent to P3 for singletons, checked directly). *)
let check_connected t : violation list =
  Term.Tbl.fold
    (fun term r acc ->
      (* Each holder except one must have a holder parent. *)
      if List.length (term_roots term !r) <= 1 then acc
      else Fmt.str "connectedness violated for term %a" Term.pp term :: acc)
    t.holders []

let verify t sigma db : (unit, violation list) result
    =
  match check_p1 t sigma db @ check_p2 t sigma @ check_p3 t @ check_connected t with
  | [] -> Ok ()
  | violations -> Error violations

let pp ppf t =
  let rec go indent n =
    Fmt.pf ppf "%s[%d] {%a}@."
      (String.make indent ' ')
      n.id
      (Names.pp_comma_list Atom.pp)
      (Atom.Set.elements n.atoms);
    List.iter (go (indent + 2)) (List.rev n.children)
  in
  go 0 t.root
