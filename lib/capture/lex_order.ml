(** Lexicographic orders on k-tuples, as Datalog rules.

    Given a successor structure (min, succ, max) on the constants of a
    database, the rules generated here define first / successor / last
    relations on k-tuples in lexicographic order — the standard
    construction the paper's Section 8 invokes from Dantsin et al. [16]
    to build the string encoding of a database. All rules are plain
    Datalog and safe. *)

open Guarded_core

type base = {
  b_min : string;  (** unary: the least constant *)
  b_succ : string;  (** binary: successor *)
  b_max : string;  (** unary: the greatest constant *)
}

type tuple_order = {
  t_first : string;  (** k-ary *)
  t_next : string;  (** 2k-ary *)
  t_last : string;  (** k-ary *)
  t_k : int;
}

let var i = Term.Var (Printf.sprintf "x%d" i)
let var' i = Term.Var (Printf.sprintf "y%d" i)

(* The Datalog rules defining the k-tuple lexicographic order [out]
   from the base order [base]. *)
let rules ~k ~(base : base) ~(out : tuple_order) : Rule.t list =
  if k <> out.t_k then invalid_arg "Lex_order.rules: k mismatch";
  let xs = List.init k var in
  let first =
    (* min(x1) ∧ ... ∧ min(xk) → first(~x) *)
    Rule.make_pos
      (List.map (fun x -> Atom.make base.b_min [ x ]) xs)
      [ Atom.make out.t_first xs ]
  in
  let last =
    Rule.make_pos
      (List.map (fun x -> Atom.make base.b_max [ x ]) xs)
      [ Atom.make out.t_last xs ]
  in
  (* One rule per position i: the successor increments position i,
     resets the positions after i from max to min, and copies the
     prefix (shared variables). *)
  let next_rules =
    List.init k (fun i ->
        let lhs = List.init k (fun j -> if j < i then var j else if j = i then var i else var' j) in
        let rhs =
          List.init k (fun j ->
              if j < i then var j else if j = i then Term.Var "xi'" else Term.Var (Printf.sprintf "m%d" j))
        in
        let body =
          Atom.make base.b_succ [ var i; Term.Var "xi'" ]
          :: List.concat
               (List.init k (fun j ->
                    if j < i then
                      (* the copied prefix ranges over the whole domain *)
                      [ Atom.make Database.acdom_rel [ var j ] ]
                    else if j = i then []
                    else
                      [
                        Atom.make base.b_max [ var' j ];
                        Atom.make base.b_min [ Term.Var (Printf.sprintf "m%d" j) ];
                      ]))
        in
        Rule.make_pos body [ Atom.make out.t_next (lhs @ rhs) ])
  in
  (first :: last :: next_rules)

(* Base-order facts for an explicitly given constant sequence. *)
let base_facts ~(base : base) constants =
  match constants with
  | [] -> invalid_arg "Lex_order.base_facts: empty domain"
  | first :: _ ->
    let rec succs = function
      | a :: (b :: _ as rest) -> Atom.make base.b_succ [ a; b ] :: succs rest
      | [ last ] -> [ Atom.make base.b_max [ last ] ]
      | [] -> []
    in
    Atom.make base.b_min [ first ] :: succs constants
