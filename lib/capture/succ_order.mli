(** The order-generation program Σ_succ of Theorem 5: a stratified
    weakly guarded theory whose chase grows every finite sequence of
    database constants as a labeled null; the repetition-free, complete
    ones are tagged good(u) and carry min/succ/max relations indexed by
    u. See the implementation header for the 4-ary/3-ary Succ repair. *)

open Guarded_core

val theory : unit -> Theory.t
(** The (repaired) 13-rule program. *)

type order = {
  order_id : Term.t;
  sequence : Term.t list;
}

val default_limits : int -> Guarded_chase.Engine.limits
(** Null-depth |domain| + 1: enough to generate every good ordering. *)

val good_orders :
  ?limits:Guarded_chase.Engine.limits ->
  ?pool:Guarded_par.Pool.t ->
  Database.t ->
  order list * Guarded_chase.Engine.outcome
(** All good orderings — exactly the |adom|! permutations. *)

val even_cardinality_theory : unit -> Theory.t
(** Σ_succ plus the parity walk: derives evenCard() iff |adom(D)| is
    even — the paper's witness that stratified negation is needed. *)

val even_cardinality :
  ?limits:Guarded_chase.Engine.limits -> ?pool:Guarded_par.Pool.t -> Database.t -> bool
