(** The PTime capture baseline (Vardi, Papadimitriou — cited next to
    Theorem 4): semipositive Datalog over ordered databases simulates a
    deterministic Turing machine for |Dom|^time steps over the
    |Dom|^space cells of a string database, with no value invention. *)

open Guarded_core

val cfg_state : string
val cfg_head : string
val cfg_tape : string
val accept_p : string

val dom_base : Lex_order.base
val time_ordering : time:int -> Lex_order.tuple_order
val space_ordering : space:int -> Lex_order.tuple_order

val theory : time:int -> space:int -> Turing.spec -> Theory.t
(** Plain Datalog (no negation, no existentials).
    @raise Invalid_argument if the accepting state has outgoing
    transitions. *)

val dom_order_facts : Database.t -> Atom.t list
(** Base-order facts derived from a degree-1 string database's cell
    order. *)

val accepts : time:int -> Turing.spec -> Database.t -> bool
(** Acceptance within |Dom|^time steps, by semi-naive evaluation over a
    degree-1 string database. *)
