(** String databases of degree k (Definition 20).

    A word over an alphabet Ω is stored as a database whose constants
    are cell indices: every k-tuple of constants (in lexicographic
    order) is one cell, carrying exactly one symbol relation from Ω; the
    relations [cell_first] (k-ary), [cell_next] (2k-ary) and
    [cell_last] (k-ary) expose the cell order. Words shorter than the
    d^k cells are padded with the blank symbol so that the
    exactly-one-symbol-per-tuple condition of the definition holds. *)

open Guarded_core

let cell_first = "cellFirst"
let cell_next = "cellNext"
let cell_last = "cellLast"

type info = {
  degree : int;  (** k *)
  domain : Term.t list;  (** the constants, in base order *)
  cells : int;  (** |domain|^k *)
}

let rec power base exp = if exp = 0 then 1 else base * power base (exp - 1)

(* All k-tuples over [domain] in lexicographic order. *)
let rec tuples domain k =
  if k = 0 then [ [] ]
  else List.concat_map (fun prefix -> List.map (fun d -> prefix @ [ d ]) domain) (tuples domain (k - 1))

let constant i = Term.Const (Printf.sprintf "e%d" i)

(* Smallest domain size d >= 2 with d^k >= n (two constants at least, so
   that the first and last cell always differ). *)
let domain_size ~k n =
  let rec go d = if power d k >= max 1 n then d else go (d + 1) in
  go 2

let encode ?(blank = "blank") ~k word : Database.t * info =
  let n = List.length word in
  (* Always leave at least one blank cell after the word: the machines
     of Section 8 detect the end of the input by reading a blank. *)
  let d = domain_size ~k (n + 1) in
  let domain = List.init d constant in
  let cells = tuples domain k in
  let db = Database.create () in
  let symbols = Array.of_list word in
  List.iteri
    (fun i cell ->
      let sym = if i < n then symbols.(i) else blank in
      ignore (Database.add db (Atom.make sym cell)))
    cells;
  let rec chain = function
    | a :: (b :: _ as rest) ->
      ignore (Database.add db (Atom.make cell_next (a @ b)));
      chain rest
    | [ last ] -> ignore (Database.add db (Atom.make cell_last last))
    | [] -> ()
  in
  (match cells with
  | first :: _ ->
    ignore (Database.add db (Atom.make cell_first first));
    chain cells
  | [] -> ());
  (db, { degree = k; domain; cells = List.length cells })

(* Read the word w(D) back from a string database. *)
let decode ~k db =
  let find_unique rel_arity name =
    match Database.facts_of_rel db (name, 0, rel_arity) with
    | [ a ] -> Atom.args a
    | [] -> invalid_arg (Fmt.str "String_db.decode: missing %s" name)
    | _ -> invalid_arg (Fmt.str "String_db.decode: ambiguous %s" name)
  in
  let first = find_unique k cell_first in
  let next_of cell =
    let pattern = Atom.make cell_next (cell @ List.init k (fun i -> Term.Var (Printf.sprintf "n%d" i))) in
    let found = ref None in
    Database.iter_candidates db pattern (fun fact ->
        match !found with
        | Some _ -> ()
        | None ->
          if Subst.match_atom Subst.empty pattern fact <> None then
            found := Some (List.filteri (fun i _ -> i >= k) (Atom.args fact)));
    !found
  in
  let symbol_of cell =
    let syms =
      Database.fold
        (fun a acc ->
          if
            Atom.arity a = k
            && (not (List.mem (Atom.rel a) [ cell_first; cell_last ]))
            && List.equal Term.equal (Atom.args a) cell
          then Atom.rel a :: acc
          else acc)
        db []
    in
    match syms with
    | [ s ] -> s
    | [] -> invalid_arg "String_db.decode: cell without symbol"
    | _ -> invalid_arg "String_db.decode: cell with several symbols"
  in
  let rec walk cell acc =
    let acc = symbol_of cell :: acc in
    match next_of cell with None -> List.rev acc | Some next -> walk next acc
  in
  walk first []

(* Check the conditions of Def. 20 for a given alphabet. *)
let validate ~k ~alphabet db : (unit, string) result =
  let domain = Term.Set.elements (Database.active_domain db) in
  let cells = tuples domain k in
  let expected = List.length cells in
  let count_symbols cell =
    List.length
      (List.filter
         (fun sym ->
           Database.mem db (Atom.make sym cell))
         alphabet)
  in
  let bad = List.filter (fun c -> count_symbols c <> 1) cells in
  if bad <> [] then Error (Fmt.str "%d of %d tuples violate exactly-one-symbol" (List.length bad) expected)
  else begin
    (* the next-chain must visit every tuple exactly once *)
    match decode ~k db with
    | word ->
      if List.length word = expected then Ok ()
      else Error (Fmt.str "successor chain covers %d of %d tuples" (List.length word) expected)
    | exception Invalid_argument m -> Error m
  end
