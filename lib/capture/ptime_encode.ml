(** The PTime baseline the paper cites next to Theorem 4: semipositive
    Datalog over ordered databases captures exactly the queries
    computable in polynomial time (Vardi [31], Papadimitriou [28]).

    The reduction here runs a deterministic Turing machine for |Dom|^t
    steps over |Dom|^s tape cells, both indexed by tuples of database
    constants in lexicographic order — so, unlike {!Tm_encode}, no value
    invention is needed and the produced program is plain (semipositive)
    Datalog:

    - [cfgState(~i, q)]      at time ~i the machine is in state q,
    - [cfgHead(~i, ~p)]      at time ~i the head is on cell ~p,
    - [cfgTape(~i, ~p, s)]   at time ~i cell ~p holds symbol s,
    - [acceptP()]            an accepting state was reached.

    The input word is read from the same string-database signature
    {!String_db} uses (cells of degree [space]); the time tuples have
    degree [time]. Lexicographic successors for both tuple spaces are
    built by {!Lex_order} from a base order given by domFirst / domNext /
    domLast facts (or derived from the cell order when [space = 1]). *)

open Guarded_core

let cfg_state = "cfgState"
let cfg_head = "cfgHead"
let cfg_tape = "cfgTape"
let accept_p = "acceptP"

let state_const q = Term.Const ("q_" ^ q)
let symbol_const s = Term.Const ("s_" ^ s)

let dom_base : Lex_order.base = { b_min = "domFirst"; b_succ = "domNext"; b_max = "domLast" }

let time_ordering ~time : Lex_order.tuple_order =
  { t_first = "timeFirst"; t_next = "timeNext"; t_last = "timeLast"; t_k = time }

let space_ordering ~space : Lex_order.tuple_order =
  { t_first = String_db.cell_first; t_next = String_db.cell_next; t_last = String_db.cell_last; t_k = space }

let tvars k = List.init k (fun i -> Term.Var (Printf.sprintf "T%d" i))
let tvars' k = List.init k (fun i -> Term.Var (Printf.sprintf "U%d" i))
let pvars k = List.init k (fun i -> Term.Var (Printf.sprintf "P%d" i))
let qvars k = List.init k (fun i -> Term.Var (Printf.sprintf "Q%d" i))

(* Tuple inequality on cells, via the strict order. *)
let lt_cells = "ltCellsP"
let differs = "differsCellsP"

let cell_inequality_rules ~space =
  let p = pvars space and q = qvars space and r = tvars' space in
  [
    Rule.make_pos [ Atom.make String_db.cell_next (p @ q) ] [ Atom.make lt_cells (p @ q) ];
    Rule.make_pos
      [ Atom.make lt_cells (p @ q); Atom.make lt_cells (q @ r) ]
      [ Atom.make lt_cells (p @ r) ];
    Rule.make_pos [ Atom.make lt_cells (p @ q) ] [ Atom.make differs (p @ q) ];
    Rule.make_pos [ Atom.make lt_cells (p @ q) ] [ Atom.make differs (q @ p) ];
  ]

(* The semipositive Datalog program simulating [spec] for |Dom|^time
   steps on the |Dom|^space cells of the input string database. *)
let theory ~time ~space (spec : Turing.spec) : Theory.t =
  if List.exists (fun ((q, _), _) -> String.equal q spec.Turing.sp_accept) spec.Turing.sp_delta
  then invalid_arg "Ptime_encode.theory: the accepting state must be halting";
  let t = tvars time and t' = tvars' time in
  let p = pvars space in
  let alphabet =
    List.sort_uniq String.compare
      (spec.Turing.sp_blank
      :: List.concat_map (fun ((_, s), tr) -> [ s; tr.Turing.write ]) spec.Turing.sp_delta)
  in
  let time_ord = time_ordering ~time in
  let init =
    (* at the first time step: start state, head at the first cell, tape
       as given by the input symbols *)
    Rule.make_pos
      [ Atom.make time_ord.t_first t ]
      [ Atom.make cfg_state (t @ [ state_const spec.Turing.sp_start ]) ]
    :: Rule.make_pos
         [ Atom.make time_ord.t_first t; Atom.make String_db.cell_first p ]
         [ Atom.make cfg_head (t @ p) ]
    :: List.map
         (fun s ->
           Rule.make_pos
             [ Atom.make time_ord.t_first t; Atom.make s p ]
             [ Atom.make cfg_tape ((t @ p) @ [ symbol_const s ]) ])
         alphabet
  in
  let step_rules =
    List.concat_map
      (fun ((q, s), (tr : Turing.transition)) ->
        let base =
          [
            Atom.make cfg_state (t @ [ state_const q ]);
            Atom.make cfg_head (t @ p);
            Atom.make cfg_tape ((t @ p) @ [ symbol_const s ]);
            Atom.make time_ord.t_next (t @ t');
          ]
        in
        let stepped ~extra ~new_head =
          [
            Rule.make_pos (base @ extra)
              [ Atom.make cfg_state (t' @ [ state_const tr.Turing.next_state ]) ];
            Rule.make_pos (base @ extra)
              [ Atom.make cfg_tape ((t' @ p) @ [ symbol_const tr.Turing.write ]) ];
            Rule.make_pos (base @ extra) [ Atom.make cfg_head (t' @ new_head) ];
          ]
        in
        match tr.Turing.move with
        | Turing.Stay -> stepped ~extra:[] ~new_head:p
        | Turing.Right ->
          let p2 = qvars space in
          stepped ~extra:[ Atom.make String_db.cell_next (p @ p2) ] ~new_head:p2
          @ stepped ~extra:[ Atom.make String_db.cell_last p ] ~new_head:p
        | Turing.Left ->
          let p0 = qvars space in
          stepped ~extra:[ Atom.make String_db.cell_next (p0 @ p) ] ~new_head:p0
          @ stepped ~extra:[ Atom.make String_db.cell_first p ] ~new_head:p)
      spec.Turing.sp_delta
  in
  let copy =
    (* unmoved cells carry their symbol to the next time step *)
    let q = qvars space in
    Rule.make_pos
      [
        Atom.make cfg_tape ((t @ p) @ [ Term.Var "S" ]);
        Atom.make cfg_head (t @ q);
        Atom.make differs (p @ q);
        Atom.make time_ord.t_next (t @ t');
      ]
      [ Atom.make cfg_tape ((t' @ p) @ [ Term.Var "S" ]) ]
  in
  let accepting =
    Rule.make_pos
      [ Atom.make cfg_state (t @ [ state_const spec.Turing.sp_accept ]) ]
      [ Atom.make accept_p [] ]
  in
  let time_lex = Lex_order.rules ~k:time ~base:dom_base ~out:time_ord in
  Theory.of_rules (time_lex @ cell_inequality_rules ~space @ init @ step_rules @ [ copy; accepting ])

(* Base-order facts over the string database's own constants, derived
   from its degree-1 cell order (for space = 1 the orders coincide). *)
let dom_order_facts db =
  let atoms = ref [] in
  Database.iter
    (fun a ->
      let renamed name = Atom.make name (Atom.args a) in
      match Atom.rel_key a with
      | name, 0, 1 when String.equal name String_db.cell_first ->
        atoms := renamed dom_base.b_min :: !atoms
      | name, 0, 1 when String.equal name String_db.cell_last ->
        atoms := renamed dom_base.b_max :: !atoms
      | name, 0, 2 when String.equal name String_db.cell_next ->
        atoms := renamed dom_base.b_succ :: !atoms
      | _ -> ())
    db;
  !atoms

(* Decide acceptance of the word in the degree-1 string database [db]
   within |Dom|^time steps, by semi-naive Datalog evaluation. *)
let accepts ~time spec db =
  let db = Database.copy db in
  Database.add_all db (dom_order_facts db);
  let sigma = theory ~time ~space:1 spec in
  let result = Guarded_datalog.Seminaive.eval sigma db in
  Database.mem result (Atom.make accept_p [])
