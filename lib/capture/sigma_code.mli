(** Σ_code (Section 8, Theorem 5): a semipositive program turning an
    ordered database with one n-ary relation R into the string database
    of R's characteristic function over the lexicographically ordered
    n-tuples. For n = 1 the output is (by default) padded with a fresh
    end-of-data constant whose cell reads blank, ready for
    {!Tm_encode}. *)

open Guarded_core

val base : Lex_order.base
val one : string
val zero : string
val blank : string
val eod_rel : string

val theory : ?pad:bool -> rel:string -> arity:int -> unit -> Theory.t
(** Semipositive (negation only on R and the end-of-data marker). *)

val encode : ?pad:bool -> rel:string -> arity:int -> Database.t -> Database.t
(** Evaluates Σ_code; [pad] defaults to [arity = 1]. The input must
    contain min/succ/max facts over its constants. *)
