(** The reduction behind Theorem 4: a deterministic Turing machine
    becomes a weakly guarded theory over string databases whose chase
    simulates the run — configurations are labeled nulls, tape cells are
    the database's k-tuples. *)

open Guarded_core

val conf0 : string
val in_state : string
val head_rel : string
val tape : string
val step : string

val accept : string
(** The 0-ary output relation: the machine halted accepting. *)

val theory : k:int -> Turing.spec -> Theory.t
(** Σ_M. Weakly guarded by construction (the test-suite checks it with
    the classifier).
    @raise Invalid_argument if the accepting state has outgoing
    transitions. *)

val accepts :
  ?limits:Guarded_chase.Engine.limits ->
  k:int ->
  Turing.spec ->
  Database.t ->
  (bool, string) result
(** Chase-based acceptance; [Error] when the budget ran out before the
    machine halted. *)
