(** String databases of degree k (Definition 20): a word stored as a
    database whose cells are the k-tuples of constants in lexicographic
    order, each carrying exactly one symbol relation; words shorter than
    the d^k cells are padded with the blank symbol, and at least one
    blank cell always follows the word (machines detect end-of-input by
    reading a blank). *)

open Guarded_core

val cell_first : string
val cell_next : string
val cell_last : string

type info = {
  degree : int;
  domain : Term.t list;
  cells : int;
}

val tuples : 'a list -> int -> 'a list list
(** All k-tuples in lexicographic order. *)

val domain_size : k:int -> int -> int

val encode : ?blank:string -> k:int -> string list -> Database.t * info

val decode : k:int -> Database.t -> string list
(** w(D): the symbols along the successor chain. *)

val validate : k:int -> alphabet:string list -> Database.t -> (unit, string) result
(** Checks the conditions of Def. 20. *)
