(** The order-generation program Σ_succ of Theorem 5.

    The stratified weakly guarded theory below grows, with existential
    rules, an infinite forest in which every finite sequence of database
    constants is represented by a labeled null; the sequences that
    enumerate the whole active domain without repetition are tagged
    [good(u)] and carry a total order in the relations
    [min(·,u)], [succ(·,·,u)], [max(·,u)].

    Faithfulness note: the paper's rule set uses "Succ" with both four
    and three arguments; we split it into the 4-ary extension relation
    [step(x, y, u, v)] ("ordering v extends u by letting y succeed x")
    and the 3-ary in-ordering successor [succ(x, y, u)], with the
    bridging rule step(x,y,u,v) → succ(x,y,v) (rules 6a/6b below).

    The chase of Σ_succ is infinite by design (every ordering keeps
    being extended, repetitions included); a null-depth bound of
    |domain| + 1 suffices to produce every good ordering, since good
    sequences have exactly |domain| elements. *)

open Guarded_core

let theory_text =
  {|
  % (1) every constant starts an ordering
  @r1  ACDom(X) -> exists U. min(X, U), new_(X, U).
  % (2) extend any ordering by any constant
  @r2  new_(X, U), ACDom(Y) -> exists V. step(X, Y, U, V), new_(Y, V).
  % (3) the last element is part of the ordering
  @r3  new_(X, U) -> old(X, U).
  % (4) inherited membership
  @r4  step(X, Y, U, V), old(X2, U) -> old(X2, V).
  % (5) inherited minimum
  @r5  step(X, Y, U, V), min(X2, U) -> min(X2, V).
  % (6a) inherited successor pairs, (6b) the new pair
  @r6a step(X, Y, U, V), succ(X2, Y2, U) -> succ(X2, Y2, V).
  @r6b step(X, Y, U, V) -> succ(X, Y, V).
  % (7)-(8) the strict order
  @r7  succ(X, Y, U) -> lt(X, Y, U).
  @r8  lt(X, Y, U), lt(Y, Z, U) -> lt(X, Z, U).
  % (9) a cycle means a repeated element
  @r9  lt(X, X, U) -> repetition(U).
  % (10) a constant missing from the ordering
  @r10 old(Y, U), ACDom(X), not old(X, U) -> omission(U).
  % (11) good orderings are complete and repetition-free
  @r11 old(X, U), not repetition(U), not omission(U) -> good(U).
  % (12) the last element of a good ordering is its maximum
  @r12 new_(X, U), good(U) -> max(X, U).
|}

let theory () = Parser.theory_of_string theory_text

(* A total order extracted from the chase: the constants in sequence. *)
type order = {
  order_id : Term.t;  (** the null identifying the ordering *)
  sequence : Term.t list;
}

let default_limits n =
  { Guarded_chase.Engine.max_derivations = 2_000_000; max_depth = Some (n + 1) }

(* Run the stratified chase and extract every good ordering. *)
let good_orders ?limits ?pool (db : Database.t) : order list * Guarded_chase.Engine.outcome =
  let n = Term.Set.cardinal (Database.active_domain db) in
  let limits = match limits with Some l -> l | None -> default_limits n in
  let res = Guarded_datalog.Stratified.chase ~limits ?pool (theory ()) db in
  let goods =
    Database.fold
      (fun a acc -> if String.equal (Atom.rel a) "good" then Atom.args a @ acc else acc)
      res.db []
  in
  let succ_of u x =
    (* both bound positions are index-intersected by iter_candidates *)
    let pattern = Atom.make "succ" [ x; Term.Var "Y"; u ] in
    let acc = ref [] in
    Database.iter_candidates res.db pattern (fun fact ->
        match Atom.args fact with
        | [ x'; y; u' ] when Term.equal x' x && Term.equal u' u -> acc := y :: !acc
        | _ -> ());
    !acc
  in
  let min_of u =
    Database.fold
      (fun a acc ->
        match (Atom.rel a, Atom.args a) with
        | "min", [ x; u' ] when Term.equal u' u -> x :: acc
        | _ -> acc)
      res.db []
  in
  let orders =
    List.filter_map
      (fun u ->
        match min_of u with
        | [ start ] ->
          let rec walk x acc =
            match succ_of u x with
            | [] -> List.rev (x :: acc)
            | [ y ] -> walk y (x :: acc)
            | _ -> List.rev (x :: acc)
          in
          Some { order_id = u; sequence = walk start [] }
        | _ -> None)
      goods
  in
  (orders, res.outcome)

(* ------------------------------------------------------------------ *)
(* The paper's own non-monotonic witness: is |adom(D)| even? This
   query is inexpressible without negation (monotonicity), and becomes
   a two-rule walk over any good ordering. *)

let even_text =
  {|
  @p1 min(X, U) -> oddIdx(X, U).
  @p2 oddIdx(X, U), succ(X, Y, U) -> evenIdx(Y, U).
  @p3 evenIdx(X, U), succ(X, Y, U) -> oddIdx(Y, U).
  @p4 good(U), max(X, U), evenIdx(X, U) -> evenCard().
|}

let even_cardinality_theory () =
  Theory.of_rules (Theory.rules (theory ()) @ Theory.rules (Parser.theory_of_string even_text))

let even_cardinality ?limits ?pool db =
  let n = Term.Set.cardinal (Database.active_domain db) in
  let limits = match limits with Some l -> l | None -> default_limits n in
  let res = Guarded_datalog.Stratified.chase ~limits ?pool (even_cardinality_theory ()) db in
  Database.mem res.db (Atom.make "evenCard" [])
