(** Σ_code: encoding an ordered database as a string database
    (Section 8, proof of Theorem 5 / the semipositive step).

    For a signature with a single n-ary relation R and a total order on
    the constants given by (min, succ, max) facts, the semipositive
    program produced here derives the characteristic string of R: the
    cells are the n-tuples of constants in lexicographic order (built by
    {!Lex_order}), each holding [one] if the tuple is in R and [zero]
    otherwise.

    For unary relations, {!encode} appends (by default) a fresh
    end-of-data constant as the new maximum whose cell reads [blank]:
    Turing machines detect the end of their input by reading a blank, so
    the padded string database feeds directly into {!Tm_encode}. The
    padding is only meaningful at arity 1 (at higher arities the
    eod-containing tuples would be interleaved in the lexicographic
    order), so it is disabled there. *)

open Guarded_core

let base : Lex_order.base = { b_min = "min"; b_succ = "succ"; b_max = "max" }

let one = "one"
let zero = "zero"
let blank = "blank"

(* The fresh end-of-data marker relation; its single fact tags the
   padding constant. *)
let eod_rel = "eodMarker"

let theory ?(pad = false) ~rel ~arity () : Theory.t =
  let out : Lex_order.tuple_order =
    {
      t_first = String_db.cell_first;
      t_next = String_db.cell_next;
      t_last = String_db.cell_last;
      t_k = arity;
    }
  in
  let xs = List.init arity (fun i -> Term.Var (Printf.sprintf "x%d" i)) in
  let dom_atom x =
    (* the original (non-padding) domain *)
    if pad then Literal.Neg (Atom.make eod_rel [ x ]) else Literal.Pos (Atom.make Database.acdom_rel [ x ])
  in
  let characteristic =
    [
      Rule.make_pos [ Atom.make rel xs ] [ Atom.make one xs ];
      (* ¬R(~x) over the original domain: the input negation the theorem
         grants on ordered databases. *)
      Rule.make
        (Literal.Neg (Atom.make rel xs)
        :: List.map (fun x -> Literal.Pos (Atom.make Database.acdom_rel [ x ])) xs
        @ List.map dom_atom xs)
        [ Atom.make zero xs ];
    ]
  in
  let padding =
    if pad then
      [ Rule.make_pos [ Atom.make eod_rel [ Term.Var "x0" ] ] [ Atom.make blank [ Term.Var "x0" ] ] ]
    else []
  in
  Theory.of_rules (Lex_order.rules ~k:arity ~base ~out @ characteristic @ padding)

(* Evaluate Σ_code over [db] (which must contain the base-order facts)
   and return the derived string database restricted to the string
   signature. With [pad] (default for arity 1), a fresh end-of-data
   constant is appended as the new maximum and its cell reads blank. *)
let encode ?pad ~rel ~arity db : Database.t =
  let pad = match pad with Some p -> p | None -> arity = 1 in
  let db =
    if not pad then db
    else begin
      let db = Database.copy db in
      let eod = Term.Const "eod_pad" in
      (* move the maximum: max(m) becomes succ(m, eod), max(eod) *)
      let old_max =
        match Database.facts_of_rel db (base.b_max, 0, 1) with
        | [ a ] -> List.hd (Atom.args a)
        | _ -> invalid_arg "Sigma_code.encode: exactly one max fact expected"
      in
      let db' = Database.restrict db (fun a -> not (String.equal (Atom.rel a) base.b_max)) in
      ignore (Database.add db' (Atom.make base.b_succ [ old_max; eod ]));
      ignore (Database.add db' (Atom.make base.b_max [ eod ]));
      ignore (Database.add db' (Atom.make eod_rel [ eod ]));
      db'
    end
  in
  let result = Guarded_datalog.Seminaive.eval (theory ~pad ~rel ~arity ()) db in
  let keep a =
    let r = Atom.rel a in
    List.mem r
      [ one; zero; blank; String_db.cell_first; String_db.cell_next; String_db.cell_last ]
  in
  Database.restrict result keep
