(** Deterministic Turing machines (the computation model of Section 8).

    Single tape, single head, bounded tape (the capture theorems simulate
    space-bounded machines whose cells are the positions of a string
    database). A missing transition halts; acceptance is halting in the
    accepting state; moving off either end halts in place. *)

type direction =
  | Left
  | Right
  | Stay

type transition = {
  next_state : string;
  write : string;
  move : direction;
}

type spec = {
  sp_name : string;
  sp_blank : string;
  sp_start : string;
  sp_accept : string;
  sp_delta : ((string * string) * transition) list;
}

val make :
  name:string ->
  blank:string ->
  start:string ->
  accept:string ->
  ((string * string) * transition) list ->
  spec
(** @raise Invalid_argument on duplicate (state, symbol) transitions. *)

val transition : spec -> string -> string -> transition option

type outcome =
  | Accepted
  | Rejected
  | Out_of_fuel

type run = {
  outcome : outcome;
  steps : int;
  final_tape : string array;
}

val run : ?fuel:int -> spec -> cells:int -> string list -> run
val accepts : ?fuel:int -> spec -> cells:int -> string list -> bool

(** {2 The machine zoo used by tests, examples and benchmarks} *)

val parity_machine : spec
(** Accepts words over \{one, zero\} with an even number of ones. *)

val balanced_machine : spec
(** Accepts zero^m one^m. *)

val counter_machine : spec
(** A binary counter taking Θ(2^n) steps on [counter_input n]. *)

val counter_input : int -> string list
