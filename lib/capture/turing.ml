(** Deterministic Turing machines (the computation model of Section 8).

    A machine works over a finite tape alphabet, has a single tape and a
    single head, and is deterministic: at most one transition per
    (state, symbol) pair. A missing transition halts the machine; it
    accepts iff it halts in the accepting state. The tape is bounded
    (the capture theorems simulate space-bounded machines whose cells
    are the positions of a string database); moving off either end
    halts the machine in place. *)

type direction =
  | Left
  | Right
  | Stay

type transition = {
  next_state : string;
  write : string;
  move : direction;
}

type spec = {
  sp_name : string;
  sp_blank : string;
  sp_start : string;
  sp_accept : string;
  sp_delta : ((string * string) * transition) list;
      (** association list on (state, read symbol) *)
}

let make ~name ~blank ~start ~accept delta =
  (* Determinism: no duplicate (state, symbol) key. *)
  let keys = List.map fst delta in
  let sorted = List.sort compare keys in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | [ _ ] | [] -> None
  in
  (match dup sorted with
  | Some (q, s) -> invalid_arg (Fmt.str "Turing.make: duplicate transition for (%s, %s)" q s)
  | None -> ());
  { sp_name = name; sp_blank = blank; sp_start = start; sp_accept = accept; sp_delta = delta }

let transition spec q s = List.assoc_opt (q, s) spec.sp_delta

type outcome =
  | Accepted
  | Rejected  (** halted in a non-accepting state *)
  | Out_of_fuel

type run = {
  outcome : outcome;
  steps : int;
  final_tape : string array;
}

(* Run [spec] on a tape of [cells] cells initialized with [input]
   (padded with blanks), head at cell 0, for at most [fuel] steps. *)
let run ?(fuel = 1_000_000) spec ~cells input =
  if List.length input > cells then invalid_arg "Turing.run: input longer than the tape";
  let tape = Array.make cells spec.sp_blank in
  List.iteri (fun i s -> tape.(i) <- s) input;
  let rec go state head steps =
    if steps >= fuel then { outcome = Out_of_fuel; steps; final_tape = tape }
    else
      match transition spec state tape.(head) with
      | None ->
        {
          outcome = (if String.equal state spec.sp_accept then Accepted else Rejected);
          steps;
          final_tape = tape;
        }
      | Some tr ->
        tape.(head) <- tr.write;
        let head' =
          match tr.move with
          | Left -> if head = 0 then head else head - 1
          | Right -> if head = cells - 1 then head else head + 1
          | Stay -> head
        in
        go tr.next_state head' (steps + 1)
  in
  go spec.sp_start 0 0

let accepts ?fuel spec ~cells input =
  match (run ?fuel spec ~cells input).outcome with
  | Accepted -> true
  | Rejected | Out_of_fuel -> false

(* ------------------------------------------------------------------ *)
(* A small zoo of machines used by tests, examples and benchmarks.     *)

(* Accepts words over {one, zero} with an even number of "one"s. *)
let parity_machine =
  let tr q s q' = ((q, s), { next_state = q'; write = s; move = Right }) in
  make ~name:"even-ones" ~blank:"blank" ~start:"even" ~accept:"acc"
    [
      tr "even" "zero" "even";
      tr "even" "one" "odd";
      tr "odd" "zero" "odd";
      tr "odd" "one" "even";
      (("even", "blank"), { next_state = "acc"; write = "blank"; move = Stay });
    ]

(* Accepts words of the form zero^m one^m (balanced halves), a classic
   crossing-off machine exercising both directions and rewriting. *)
let balanced_machine =
  let t q s q' w m = ((q, s), { next_state = q'; write = w; move = m }) in
  make ~name:"zeros-then-ones" ~blank:"blank" ~start:"seek0" ~accept:"acc"
    [
      (* Cross off the leftmost zero... *)
      t "seek0" "zero" "scan_right" "crossed" Right;
      t "seek0" "crossed" "seek0" "crossed" Right;
      t "seek0" "blank" "acc" "blank" Stay;
      (* ... find the last one and cross it off. *)
      t "scan_right" "zero" "scan_right" "zero" Right;
      t "scan_right" "one" "scan_right" "one" Right;
      t "scan_right" "crossed" "back_off" "crossed" Left;
      t "scan_right" "blank" "back_off" "blank" Left;
      t "back_off" "one" "rewind" "crossed" Left;
      (* Rewind to the leftmost uncrossed zero. *)
      t "rewind" "zero" "rewind" "zero" Left;
      t "rewind" "one" "rewind" "one" Left;
      t "rewind" "crossed" "seek0" "crossed" Right;
    ]

(* A binary counter, least significant bit first after a left-end
   marker: the input is [lend; zero^n] and the machine increments until
   the counter overflows (all cells were one), which takes Θ(2^n) steps
   — the witness that weakly guarded chases genuinely need exponential
   time. Run it with at least one blank cell after the bits. *)
let counter_machine =
  let t q s q' w m = ((q, s), { next_state = q'; write = w; move = m }) in
  make ~name:"binary-counter" ~blank:"blank" ~start:"start" ~accept:"acc"
    [
      t "start" "lend" "inc" "lend" Right;
      (* Increment with carry from the least significant bit. *)
      t "inc" "one" "inc" "zero" Right;
      t "inc" "zero" "rewind" "one" Left;
      (* Carry past the last bit: overflow, every bit was one. *)
      t "inc" "blank" "acc" "blank" Stay;
      t "rewind" "zero" "rewind" "zero" Left;
      t "rewind" "one" "rewind" "one" Left;
      t "rewind" "lend" "inc" "lend" Right;
    ]

let counter_input n = "lend" :: List.init n (fun _ -> "zero")
