(** Lexicographic orders on k-tuples as Datalog rules, from a base
    (min, succ, max) order on the constants — the standard construction
    Section 8 invokes to build string encodings of databases. *)

open Guarded_core

type base = {
  b_min : string;
  b_succ : string;
  b_max : string;
}

type tuple_order = {
  t_first : string;
  t_next : string;
  t_last : string;
  t_k : int;
}

val rules : k:int -> base:base -> out:tuple_order -> Rule.t list
(** Pure Datalog (the prefix-copy positions range over ACDom). *)

val base_facts : base:base -> Term.t list -> Atom.t list
(** Base-order facts for an explicit constant sequence. *)
