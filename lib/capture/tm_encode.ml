(** The reduction behind Theorem 4: from a deterministic Turing machine
    to a weakly guarded theory over string databases.

    The machine's tape cells are the k-tuples of the input string
    database; configurations are labeled nulls invented by the chase.
    Relations:
    - [conf0(c)]           the initial configuration,
    - [inState(c, q)]      the machine is in state q (a constant),
    - [head(c, ~p)]        the head sits on cell ~p,
    - [tape(c, ~p, s)]     cell ~p holds symbol s (a constant),
    - [step(c, c')]        c' is the successor configuration of c,
    - [accept()]           the machine halted in the accepting state.

    Every rule is weakly guarded: the only unsafe variables are the
    configuration nulls c, c', always covered jointly by a [step] or
    singly by an [inState]/[conf0] atom; cell and symbol variables live
    in non-affected (database) positions. The tape-copy rule uses a
    tuple inequality computed by Datalog from the transitive closure of
    the cell successor. A deterministic machine yields a chase that is
    one configuration chain; it saturates exactly when the machine
    halts, so bounded chase entailment of [accept()] decides acceptance
    for halting machines. *)

open Guarded_core

let conf0 = "conf0"
let in_state = "inState"
let head_rel = "head"
let tape = "tape"
let step = "step"
let accept = "accept"
let lt_cells = "ltCells"
let differs = "differsCells"

let state_const q = Term.Const ("q_" ^ q)
let symbol_const s = Term.Const ("s_" ^ s)

let cvar = Term.Var "C"
let cvar' = Term.Var "C2"
let pvars k = List.init k (fun i -> Term.Var (Printf.sprintf "P%d" i))
let pvars' k = List.init k (fun i -> Term.Var (Printf.sprintf "R%d" i))
let qvars k = List.init k (fun i -> Term.Var (Printf.sprintf "Q%d" i))

(* Datalog: strict order on cells (transitive closure of cell_next) and
   the tuple inequality derived from it. *)
let cell_order_rules ~k =
  let p = pvars k and q = qvars k and r = pvars' k in
  [
    Rule.make_pos [ Atom.make String_db.cell_next (p @ q) ] [ Atom.make lt_cells (p @ q) ];
    Rule.make_pos
      [ Atom.make lt_cells (p @ q); Atom.make lt_cells (q @ r) ]
      [ Atom.make lt_cells (p @ r) ];
    Rule.make_pos [ Atom.make lt_cells (p @ q) ] [ Atom.make differs (p @ q) ];
    Rule.make_pos [ Atom.make lt_cells (p @ q) ] [ Atom.make differs (q @ p) ];
  ]

(* The full theory Σ_M for machine [spec] over degree-k string
   databases whose symbols it reads directly as relation names. *)
let theory ~k (spec : Turing.spec) : Theory.t =
  let outgoing_from_accept =
    List.exists (fun ((q, _), _) -> String.equal q spec.sp_accept) spec.sp_delta
  in
  if outgoing_from_accept then
    invalid_arg "Tm_encode.theory: the accepting state must be halting";
  let p = pvars k in
  let alphabet =
    List.sort_uniq String.compare
      (spec.sp_blank
      :: List.concat_map (fun ((_, s), tr) -> [ s; tr.Turing.write ]) spec.sp_delta)
  in
  let init =
    Rule.make_pos ~evars:[ "C" ] [] [ Atom.make conf0 [ cvar ] ]
    :: Rule.make_pos [ Atom.make conf0 [ cvar ] ] [ Atom.make in_state [ cvar; state_const spec.sp_start ] ]
    :: Rule.make_pos
         [ Atom.make conf0 [ cvar ]; Atom.make String_db.cell_first p ]
         [ Atom.make head_rel (cvar :: p) ]
    :: List.map
         (fun s ->
           Rule.make_pos
             [ Atom.make conf0 [ cvar ]; Atom.make s p ]
             [ Atom.make tape ((cvar :: p) @ [ symbol_const s ]) ])
         alphabet
  in
  (* One existential rule per transition and movement case. *)
  let transition_rules =
    List.concat_map
      (fun ((q, s), (tr : Turing.transition)) ->
        let base_body =
          [
            Atom.make in_state [ cvar; state_const q ];
            Atom.make head_rel (cvar :: p);
            Atom.make tape ((cvar :: p) @ [ symbol_const s ]);
          ]
        in
        let make_step ~extra_body ~new_head =
          Rule.make_pos ~evars:[ "C2" ] (base_body @ extra_body)
            [
              Atom.make step [ cvar; cvar' ];
              Atom.make in_state [ cvar'; state_const tr.next_state ];
              Atom.make tape ((cvar' :: p) @ [ symbol_const tr.write ]);
              Atom.make head_rel (cvar' :: new_head);
            ]
        in
        match tr.move with
        | Turing.Stay -> [ make_step ~extra_body:[] ~new_head:p ]
        | Turing.Right ->
          let p2 = qvars k in
          [
            make_step ~extra_body:[ Atom.make String_db.cell_next (p @ p2) ] ~new_head:p2;
            (* at the right end the head stays in place *)
            make_step ~extra_body:[ Atom.make String_db.cell_last p ] ~new_head:p;
          ]
        | Turing.Left ->
          let p0 = qvars k in
          [
            make_step ~extra_body:[ Atom.make String_db.cell_next (p0 @ p) ] ~new_head:p0;
            make_step ~extra_body:[ Atom.make String_db.cell_first p ] ~new_head:p;
          ])
      spec.sp_delta
  in
  let copy =
    (* step(c,c') ∧ tape(c,~p,s) ∧ head(c,~q) ∧ differs(~p,~q) → tape(c',~p,s) *)
    let q = qvars k in
    Rule.make_pos
      [
        Atom.make step [ cvar; cvar' ];
        Atom.make tape ((cvar :: p) @ [ Term.Var "S" ]);
        Atom.make head_rel (cvar :: q);
        Atom.make differs (p @ q);
      ]
      [ Atom.make tape ((cvar' :: p) @ [ Term.Var "S" ]) ]
  in
  let accepting =
    Rule.make_pos
      [ Atom.make in_state [ cvar; state_const spec.sp_accept ] ]
      [ Atom.make accept [] ]
  in
  Theory.of_rules (init @ cell_order_rules ~k @ transition_rules @ [ copy; accepting ])

(* Decide whether [spec] accepts the word stored in the string database
   [db] by chasing Σ_M; complete whenever the machine halts within the
   derivation budget. *)
let accepts ?limits ~k spec db =
  match Guarded_chase.Engine.entails ?limits (theory ~k spec) db (Atom.make accept []) with
  | Guarded_chase.Engine.Proved -> Ok true
  | Guarded_chase.Engine.Disproved -> Ok false
  | Guarded_chase.Engine.Unknown -> Error "chase budget exhausted before the machine halted"
