(** Selections (Definitions 7-9).

    A selection for a rule σ is a partial function μ from uvars(σ) to
    uvars(σ) with |ran(μ)| ≤ k (the maximal relation arity). Only
    retractions are enumerated — μ is the identity on its range — which
    is sufficient for the proof of Theorem 1. *)

open Guarded_core

type t = Subst.t
(** variable-to-variable substitution *)

val apply : t -> Atom.t list -> Atom.t list

val domain : t -> Names.Sset.t
val range_vars : t -> Names.Sset.t

val covered : Rule.t -> t -> Atom.t list
(** cov(σ, μ): positive body atoms whose argument variables all lie in
    dom(μ) (Def. 8). *)

val non_covered : ?cov:Atom.t list -> Rule.t -> t -> Atom.t list
(** Complement of cov(σ, μ) in the body; pass [cov] when already
    computed to skip re-deriving it. *)

val keep : ?include_head:bool -> ?non_cov:Atom.t list -> Rule.t -> t -> string list
(** keep(σ, μ): the images μ(x) of domain variables occurring in a
    non-covered atom — plus, when [include_head] (the rc case), in the
    head (Def. 9; see the implementation note on the rnc case and the
    paper's Examples 5-6). Sorted: the paper's fixed enumeration ~X. *)

val enumerate : k:int -> Rule.t -> t list
(** All retraction selections over the rule's argument variables with
    range size at most [k]. *)

val pp : t Fmt.t
