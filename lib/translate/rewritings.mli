(** The rc- ("remove covered") and rnc- ("remove non-covered")
    rewritings of Definitions 10-11.

    Both split a non-guarded Datalog rule σ of a normal frontier-guarded
    theory into a guarded rule and a structurally smaller
    frontier-guarded rule communicating through a fresh relation H over
    keep(σ, μ). Guard atoms are enumerated as injective placements of
    the required variables into a candidate relation's positions, padded
    with fresh variables. H names come from [name_of], a memoized gensym
    keyed by the canonical content of the rewriting, so isomorphic
    rewritings share their auxiliary relation. *)

open Guarded_core

val placements :
  ?pad:string -> ?avoid:Names.Sset.t -> string list -> int -> Term.t list list
(** All injective placements of the given variables into that many
    slots, deterministic slot-indexed pad variables elsewhere ([pad] is
    the name prefix, default ["!p"]; names in [avoid] — callers pass
    the variables of the rule under construction — are skipped, so pads
    capture nothing). Deterministic pads make re-derived guards
    hash-cons to the same atoms, which lets closure dedup skip
    canonicalization on repeats. *)

val guard_atoms :
  ?avoid:Names.Sset.t ->
  relations:Atom.rel_key list ->
  needed_args:string list ->
  needed_ann:string list ->
  unit ->
  Atom.t list

type content_key = string * Rule.structural_key
(** Identity of a rewriting's fresh relation H: the rewriting kind
    together with the canonical structural key of H's definition. Kept
    as ints (hash-consed atom ids) rather than a printed rule. *)

val rc :
  relations:Atom.rel_key list ->
  name_of:(content_key -> string) ->
  Rule.t ->
  Selection.t ->
  Rule.t list
(** The rc-rewriting (Def. 10): σ'' followed by the guard variants of
    σ'. [relations] should be the node-creating (existential-head)
    relations. Empty when the variable-projection condition fails or no
    guard exists. *)

val rnc :
  node_relations:Atom.rel_key list ->
  all_relations:Atom.rel_key list ->
  name_of:(content_key -> string) ->
  Rule.t ->
  Selection.t ->
  Rule.t list
(** The rnc-rewriting (Def. 11): all guard variants of σ' (whose guard
    ranges over every relation — it fires on database constants) and σ''
    (guarded by a node-creating relation). *)
