(** The rc- ("remove covered") and rnc- ("remove non-covered")
    rewritings of Definitions 10-11.

    Both split a non-guarded Datalog rule σ of a normal frontier-guarded
    theory into a guarded rule and a structurally smaller
    frontier-guarded rule communicating through a fresh relation H over
    keep(σ, μ). Guard atoms are enumerated as injective placements of
    the required variables into a candidate relation's positions, padded
    with fresh variables. H names come from [name_of], a memoized gensym
    keyed by the canonical content of the rewriting, so isomorphic
    rewritings share their auxiliary relation. *)

open Guarded_core

val placements :
  ?pad:string -> ?avoid:Names.Sset.t -> string list -> int -> Term.t list list
(** All injective placements of the given variables into that many
    slots, deterministic slot-indexed pad variables elsewhere ([pad] is
    the name prefix, default ["!p"]; names in [avoid] — callers pass
    the variables of the rule under construction — are skipped, so pads
    capture nothing). Deterministic pads make re-derived guards
    hash-cons to the same atoms, which lets closure dedup skip
    canonicalization on repeats. *)

val guard_atoms :
  ?avoid:Names.Sset.t ->
  relations:Atom.rel_key list ->
  needed_args:string list ->
  needed_ann:string list ->
  unit ->
  Atom.t list

type content_key = string * Rule.Key.t
(** Identity of a rewriting's fresh relation H: the rewriting kind
    together with the renaming-invariant canonical key of H's
    definition. Kept as ints rather than a printed rule. *)

type guard_memo
(** Memo for guard enumeration across the rewritings of one expansion.
    Callers must use tag-consistent relation lists for its lifetime
    (rc/rnc already do: one memo per [Expansion.expand]). *)

val guard_memo : unit -> guard_memo

type family_memo
(** Per-H-name memo recording whether a rewriting's σ' guard family was
    non-empty when first emitted. Content-equal rewritings produce guard
    families that are renamings of each other, so after the first
    emission for a given H the family is skipped (the closure would
    deduplicate every member anyway) and an empty verdict makes every
    re-occurrence inert, as in the unmemoized computation. *)

val family_memo : unit -> family_memo

val rc :
  ?memo:guard_memo ->
  ?families:family_memo ->
  ?cov:Atom.t list ->
  ?non_cov:Atom.t list ->
  relations:Atom.rel_key list ->
  name_of:(content_key -> string) ->
  Rule.t ->
  Selection.t ->
  Rule.t list
(** The rc-rewriting (Def. 10): σ'' followed by the guard variants of
    σ'. [relations] should be the node-creating (existential-head)
    relations. Empty when the variable-projection condition fails or no
    guard exists. *)

val rnc :
  ?memo:guard_memo ->
  ?families:family_memo ->
  ?cov:Atom.t list ->
  ?non_cov:Atom.t list ->
  node_relations:Atom.rel_key list ->
  all_relations:Atom.rel_key list ->
  name_of:(content_key -> string) ->
  Rule.t ->
  Selection.t ->
  Rule.t list
(** The rnc-rewriting (Def. 11): all guard variants of σ' (whose guard
    ranges over every relation — it fires on database constants) and σ''
    (guarded by a node-creating relation). *)
