(** The rc- ("remove covered") and rnc- ("remove non-covered")
    rewritings of Definitions 10-11.

    Both split a non-guarded Datalog rule σ of a normal frontier-guarded
    theory into a guarded rule and a structurally smaller
    frontier-guarded rule communicating through a fresh relation H over
    keep(σ, μ). Guard atoms are enumerated as injective placements of
    the required variables into a candidate relation's positions, padded
    with fresh variables. H names come from [name_of], a memoized gensym
    keyed by the canonical content of the rewriting, so isomorphic
    rewritings share their auxiliary relation. *)

open Guarded_core

val placements : string list -> int -> Term.t list list
(** All injective placements of the given variables into that many
    slots, fresh pads elsewhere. *)

val guard_atoms :
  relations:Atom.rel_key list ->
  needed_args:string list ->
  needed_ann:string list ->
  Atom.t list

val rc :
  relations:Atom.rel_key list ->
  name_of:(string -> string) ->
  Rule.t ->
  Selection.t ->
  Rule.t list
(** The rc-rewriting (Def. 10): σ'' followed by the guard variants of
    σ'. [relations] should be the node-creating (existential-head)
    relations. Empty when the variable-projection condition fails or no
    guard exists. *)

val rnc :
  node_relations:Atom.rel_key list ->
  all_relations:Atom.rel_key list ->
  name_of:(string -> string) ->
  Rule.t ->
  Selection.t ->
  Rule.t list
(** The rnc-rewriting (Def. 11): all guard variants of σ' (whose guard
    ranges over every relation — it fires on database constants) and σ''
    (guarded by a node-creating relation). *)
