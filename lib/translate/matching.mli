(** Matching of atom conjunctions against atom conjunctions with
    variables on both sides: the target side is frozen into marker
    constants, matched, and thawed back. *)

open Guarded_core

val freeze_term : Term.t -> Term.t
val thaw_term : Term.t -> Term.t
val freeze_atom : Atom.t -> Atom.t

val all : Atom.t list -> Atom.t list -> Subst.t list
(** All homomorphisms from the patterns into the target atom set; the
    returned substitutions may map into the target's variables. *)

val extensions : Subst.t -> string list -> Term.t list -> Subst.t list
(** All extensions of the substitution mapping each listed variable to
    one of the candidate terms. *)
