(** Rule subsumption: shrinking translated programs.

    A Datalog rule r1 subsumes r2 when some substitution θ maps the
    head of r1 onto the head of r2 and every body atom of θ(r1) into
    the body of r2 — then r2 derives nothing r1 does not, and deleting
    r2 preserves the program's fixpoint on every database. The
    translations of Sections 5-6 produce many such redundancies (guard
    variants instantiate each other), so the reducer is offered as a
    post-pass on their Datalog outputs. *)

open Guarded_core

(* Does [r1] subsume [r2]? Positive single-head Datalog only; anything
   else is conservatively not subsumed. *)
let subsumes r1 r2 =
  match (Rule.head r1, Rule.head r2) with
  | [ _ ], [ h2 ]
    when Rule.is_datalog r1 && Rule.is_datalog r2 && Rule.is_positive r1
         && Rule.is_positive r2 -> (
    let r1 = Rule.rename_apart (Names.gensym "sb") r1 in
    let h1 = List.hd (Rule.head r1) in
    (* freeze r2 entirely; match θ(h1) = h2 then θ(body r1) ⊆ body r2 *)
    let frozen_h2 = Matching.freeze_atom h2 in
    let frozen_body2 = List.map Matching.freeze_atom (Rule.body_atoms r2) in
    match Subst.match_atom Subst.empty h1 frozen_h2 with
    | None -> false
    | Some theta ->
      let db = Database.of_atoms frozen_body2 in
      Homomorphism.exists ~init:theta (Rule.body_atoms r1) db)
  | _ -> false

(* Remove rules subsumed by another (distinct) rule of the theory.
   Identical-up-to-renaming duplicates collapse to their first
   occurrence. *)
let reduce (sigma : Theory.t) : Theory.t =
  let rules = Array.of_list (Theory.rules (Theory.dedup sigma)) in
  let n = Array.length rules in
  let dead = Array.make n false in
  for i = 0 to n - 1 do
    if not dead.(i) then
      for j = 0 to n - 1 do
        if i <> j && (not dead.(j)) && subsumes rules.(i) rules.(j) then dead.(j) <- true
      done
  done;
  Theory.of_rules
    (List.filteri (fun i _ -> not dead.(i)) (Array.to_list rules))
