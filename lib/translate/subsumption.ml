(** Rule subsumption: shrinking translated programs.

    A Datalog rule r1 subsumes r2 when some substitution θ maps the
    head of r1 onto the head of r2 and every body atom of θ(r1) into
    the body of r2 — then r2 derives nothing r1 does not, and deleting
    r2 preserves the program's fixpoint on every database. The
    translations of Sections 5-6 produce many such redundancies (guard
    variants instantiate each other), so the reducer is offered as a
    post-pass on their Datalog outputs, and {!Saturate.closure} runs
    the pairwise test inside its commit loop.

    The pairwise test matches the candidate subsumer's variables
    against a frozen copy of the target: freezing turns the target's
    variables into reserved constants, so the match side needs no
    renaming apart — a variable can never capture a constant. The
    frozen target (head plus a body {!Database}) is therefore a
    reusable value, built once per rule by {!prepare} and shared across
    every subsumer probed against it; the seed implementation rebuilt
    it — plus a gensym-renamed copy of the subsumer — for every pair. *)

open Guarded_core

(* Only positive single-head Datalog rules take part, on either side. *)
let eligible r =
  match Rule.head r with
  | [ _ ] -> Rule.is_datalog r && Rule.is_positive r
  | _ -> false

type target = {
  tg_head : Atom.t;  (** frozen head atom *)
  tg_db : Database.t;  (** frozen body atoms, indexed for matching *)
  tg_body_rels : int list;  (** sorted distinct body relation ids *)
}

let body_rel_ids r =
  List.sort_uniq Int.compare (List.map Atom.rel_id (Rule.body_atoms r))

let prepare r =
  if not (eligible r) then None
  else
    match Rule.head r with
    | [ h ] ->
      Some
        {
          tg_head = Matching.freeze_atom h;
          tg_db = Database.of_atoms (List.map Matching.freeze_atom (Rule.body_atoms r));
          tg_body_rels = body_rel_ids r;
        }
    | _ -> None

(* θ(head r1) = target head, then θ(body r1) into the target body. The
   homomorphism search runs against the prepared database; [r1]'s
   variables match frozen constants freely and real constants only
   match themselves, exactly the classical subsumption test. *)
let subsumes_prepared r1 (tg : target) =
  eligible r1
  &&
  match Rule.head r1 with
  | [ h1 ] -> (
    match Subst.match_atom Subst.empty h1 tg.tg_head with
    | None -> false
    | Some theta -> Homomorphism.exists ~init:theta (Rule.body_atoms r1) tg.tg_db)
  | _ -> false

let subsumes r1 r2 =
  match prepare r2 with None -> false | Some tg -> subsumes_prepared r1 tg

(* [subset xs ys] for sorted distinct int lists. *)
let rec rel_ids_subset xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' ->
    if x = y then rel_ids_subset xs' ys'
    else if x > y then rel_ids_subset xs ys'
    else false

(* Remove rules subsumed by another (distinct) rule of the theory.
   Identical-up-to-renaming duplicates collapse to their first
   occurrence; among mutually subsuming rules the earliest survives
   (the outer loop visits candidates first-to-last and only live rules
   get to subsume).

   Candidate pairs come from an index instead of the seed's full n²
   scan: a subsumer must share the target's head relation, and its body
   relations must be a subset of the target's (θ maps body atoms onto
   same-relation atoms), so rules are grouped by head relation id and
   pairs failing the body-relation subset test are skipped before any
   matching work. Targets are prepared once up front. *)
let reduce (sigma : Theory.t) : Theory.t =
  let rules = Array.of_list (Theory.rules (Theory.dedup sigma)) in
  let n = Array.length rules in
  let dead = Array.make n false in
  let targets = Array.map prepare rules in
  let body_rels = Array.map body_rel_ids rules in
  (* head relation id -> indexes of eligible rules, ascending *)
  let by_head : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      if targets.(i) <> None then begin
        let rel = Atom.rel_id (List.hd (Rule.head r)) in
        match Hashtbl.find_opt by_head rel with
        | Some l -> l := i :: !l
        | None -> Hashtbl.add by_head rel (ref [ i ])
      end)
    rules;
  Hashtbl.iter (fun _ l -> l := List.rev !l) by_head;
  for i = 0 to n - 1 do
    if (not dead.(i)) && targets.(i) <> None then begin
      let rel = Atom.rel_id (List.hd (Rule.head rules.(i))) in
      match Hashtbl.find_opt by_head rel with
      | None -> ()
      | Some l ->
        List.iter
          (fun j ->
            if
              i <> j
              && (not dead.(j))
              && rel_ids_subset body_rels.(i) body_rels.(j)
              &&
              match targets.(j) with
              | Some tg -> subsumes_prepared rules.(i) tg
              | None -> false
            then dead.(j) <- true)
          !l
    end
  done;
  Theory.of_rules (List.filteri (fun i _ -> not dead.(i)) (Array.to_list rules))
