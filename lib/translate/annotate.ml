(** Relation-name annotations and the weakly-frontier-guarded to
    weakly-guarded translation (Definitions 16-18, Theorem 2).

    The three steps of Section 5.2:
    - [properize] reorders argument positions so that the affected
      positions of every relation form a prefix (Def. 16);
    - [annotate] moves the terms in non-affected positions into the
      relation-name annotation (Def. 17), turning a weakly
      frontier-guarded theory into a frontier-guarded one;
    - the annotated theory is rewritten with {!Rewrite_fg} and
      [deannotate] turns annotations back into ordinary argument
      positions (Def. 18), yielding a weakly guarded theory. *)

open Guarded_core

(* ------------------------------------------------------------------ *)
(* Properization                                                       *)

type properized = {
  theory : Theory.t;
  (* per relation: the permutation sending old positions to new ones *)
  perms : (Atom.rel_key, int array) Hashtbl.t;
}

let permute_args perm args =
  let arr = Array.of_list args in
  let out = Array.make (Array.length arr) (List.nth args 0) in
  Array.iteri (fun old_pos new_pos -> out.(new_pos) <- arr.(old_pos)) perm;
  Array.to_list out

let properize (sigma : Theory.t) : properized =
  let ap = Classify.affected_positions sigma in
  let perms = Hashtbl.create 16 in
  let perm_of key arity =
    match Hashtbl.find_opt perms key with
    | Some p -> p
    | None ->
      let affected = List.init arity (fun i -> Classify.Pos_set.mem (key, i) ap) in
      let order =
        List.stable_sort
          (fun i j ->
            let ai = List.nth affected i and aj = List.nth affected j in
            if ai = aj then Int.compare i j else if ai then -1 else 1)
          (List.init arity (fun i -> i))
      in
      (* order.(new) = old; invert into perm.(old) = new *)
      let perm = Array.make arity 0 in
      List.iteri (fun new_pos old_pos -> perm.(old_pos) <- new_pos) order;
      Hashtbl.add perms key perm;
      perm
  in
  let permute_atom a =
    if Atom.args a = [] then a
    else
      let perm = perm_of (Atom.rel_key a) (Atom.arity a) in
      Atom.make ~ann:(Atom.ann a) (Atom.rel a) (permute_args perm (Atom.args a))
  in
  let theory =
    Theory.of_rules
      (List.map
         (fun r ->
           Rule.make ?label:(Rule.label r)
             ~evars:(Names.Sset.elements (Rule.evars r))
             (List.map (Literal.map_atom permute_atom) (Rule.body r))
             (List.map permute_atom (Rule.head r)))
         (Theory.rules sigma))
  in
  { theory; perms }

(* Apply / undo the position permutation on a database or an atom. *)
let permute_db (p : properized) db =
  let out = Database.create () in
  Database.iter
    (fun a ->
      let a' =
        match Hashtbl.find_opt p.perms (Atom.rel_key a) with
        | None -> a
        | Some perm -> Atom.make ~ann:(Atom.ann a) (Atom.rel a) (permute_args perm (Atom.args a))
      in
      ignore (Database.add out a'))
    db;
  out

let unpermute_atom (p : properized) a =
  match Hashtbl.find_opt p.perms (Atom.rel_key a) with
  | None -> a
  | Some perm ->
    let inv = Array.make (Array.length perm) 0 in
    Array.iteri (fun old_pos new_pos -> inv.(new_pos) <- old_pos) perm;
    Atom.make ~ann:(Atom.ann a) (Atom.rel a) (permute_args inv (Atom.args a))

(* ------------------------------------------------------------------ *)
(* Annotation a(Σ) and its inverse a⁻(Σ)                               *)

(* Number of affected (prefix) positions of each relation. *)
let affected_prefix_lengths (sigma : Theory.t) =
  let ap = Classify.affected_positions sigma in
  let tbl = Hashtbl.create 16 in
  Theory.Rel_set.iter
    (fun ((_, _, arity) as key) ->
      let rec count i = if i < arity && Classify.Pos_set.mem (key, i) ap then count (i + 1) else i in
      Hashtbl.replace tbl key (count 0))
    (Theory.relations sigma);
  tbl

let annotate_atom prefix_lengths a =
  if Atom.ann a <> [] then invalid_arg "Annotate: atom is already annotated";
  let i =
    match Hashtbl.find_opt prefix_lengths (Atom.rel_key a) with
    | Some i -> i
    | None -> Atom.arity a
  in
  let args = Atom.args a in
  let affected = List.filteri (fun j _ -> j < i) args in
  let rest = List.filteri (fun j _ -> j >= i) args in
  Atom.make ~ann:rest (Atom.rel a) affected

(* a(Σ): move terms in non-affected positions into annotations. The
   theory must be proper. *)
let annotate (sigma : Theory.t) : Theory.t =
  if not (Classify.is_proper sigma) then
    invalid_arg "Annotate.annotate: theory is not proper (call properize first)";
  let prefix_lengths = affected_prefix_lengths sigma in
  Theory.of_rules
    (List.map
       (fun r ->
         Rule.make ?label:(Rule.label r)
           ~evars:(Names.Sset.elements (Rule.evars r))
           (List.map (Literal.map_atom (annotate_atom prefix_lengths)) (Rule.body r))
           (List.map (annotate_atom prefix_lengths) (Rule.head r)))
       (Theory.rules sigma))

let annotate_db (sigma : Theory.t) db =
  let prefix_lengths = affected_prefix_lengths sigma in
  let out = Database.create () in
  Database.iter (fun a -> ignore (Database.add out (annotate_atom prefix_lengths a))) db;
  out

(* a⁻(Σ): R[~v](~t) becomes R(~t, ~v) (Def. 18). *)
let deannotate_atom a =
  match Atom.ann a with
  | [] -> a
  | ann -> Atom.make (Atom.rel a) (Atom.args a @ ann)

let deannotate (sigma : Theory.t) : Theory.t =
  Theory.of_rules
    (List.map
       (fun r ->
         Rule.make ?label:(Rule.label r)
           ~evars:(Names.Sset.elements (Rule.evars r))
           (List.map (Literal.map_atom deannotate_atom) (Rule.body r))
           (List.map deannotate_atom (Rule.head r)))
       (Theory.rules sigma))

(* ------------------------------------------------------------------ *)
(* Renormalization of an annotated theory                              *)

let front_gensym = Names.gensym "AFront"

(* Annotation can strip a guard of variables that only sat in its
   non-affected positions, so an existential rule of a(Σ) need not be
   guarded even though Σ was normal. Split such rules through a fresh
   frontier relation carrying the head annotation. *)
let reguard_existential r =
  if Rule.is_datalog r || Classify.is_guarded_rule r then [ r ]
  else begin
    let head =
      match Rule.head r with
      | [ h ] -> h
      | _ -> invalid_arg "Annotate.reguard_existential: non-singleton head"
    in
    let frontier = Names.Sset.elements (Rule.fvars_args r) in
    let aux =
      Atom.make ~ann:(Atom.ann head) (Names.fresh front_gensym)
        (List.map (fun v -> Term.Var v) frontier)
    in
    [
      Rule.make ?label:(Rule.label r) (Rule.body r) [ aux ];
      Rule.make_pos ~evars:(Names.Sset.elements (Rule.evars r)) [ aux ] [ head ];
    ]
  end

let renormalize (sigma : Theory.t) : Theory.t =
  Theory.of_rules (List.concat_map reguard_existential (Theory.rules sigma))

(* ------------------------------------------------------------------ *)
(* The full translation of Theorem 2                                   *)

type result = {
  theory : Theory.t;  (** the weakly guarded rew(Σ), original layout *)
  stats : Expansion.stats;
}

(* rew(Σ) = a⁻(rew(a(Σ))) for a normal weakly frontier-guarded Σ. The
   input is properized first and the result is mapped back to the
   original argument layout, so callers never see the permutation. *)
let rew_weakly_frontier_guarded ?max_rules (sigma : Theory.t) : result =
  if not (Normalize.is_normal sigma) then
    invalid_arg "Annotate.rew_weakly_frontier_guarded: theory is not normal";
  if not (Classify.is_weakly_frontier_guarded sigma) then
    invalid_arg "Annotate.rew_weakly_frontier_guarded: theory is not weakly frontier-guarded";
  let original_rels = Theory.relations sigma in
  let p = properize sigma in
  let annotated = renormalize (annotate p.theory) in
  (* The paper states that a(Σ) is frontier-guarded whenever Σ is weakly
     frontier-guarded; this fails when a safe variable occurs at an
     affected head position (see DESIGN.md). Detect the corner rather
     than produce a wrong translation. *)
  if not (Classify.is_frontier_guarded annotated) then
    invalid_arg
      "Annotate.rew_weakly_frontier_guarded: a(Σ) is not frontier-guarded (a safe \
       variable occurs at an affected head position; this corner of Def. 17 is \
       unsupported, see DESIGN.md)";
  let rewritten, stats = Rewrite_fg.rew_frontier_guarded ?max_rules annotated in
  let plain = deannotate rewritten in
  (* Restore the original argument order on the original relations; the
     auxiliary relations introduced by the expansion keep their layout.
     A deannotated original relation has its full original arity again,
     so the stored permutation applies directly. *)
  let restore_atom a =
    if Theory.Rel_set.mem (Atom.rel_key a) original_rels then unpermute_atom p a else a
  in
  let theory =
    Theory.of_rules
      (List.map
         (fun r ->
           Rule.make ?label:(Rule.label r)
             ~evars:(Names.Sset.elements (Rule.evars r))
             (List.map (Literal.map_atom restore_atom) (Rule.body r))
             (List.map restore_atom (Rule.head r)))
         (Theory.rules plain))
  in
  { theory; stats }
