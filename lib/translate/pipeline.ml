(** End-to-end translation and query-answering pipelines composing the
    paper's results.

    Database-independent translations (Sections 5-6):
    - every language of Figure 1 with PTime data complexity (up to
      nearly frontier-guarded) compiles to a plain Datalog program with
      the same certain answers ({!to_datalog});
    - weakly frontier-guarded theories compile to weakly guarded ones
      ({!to_weakly_guarded}, Theorem 2).

    Database-dependent answering:
    - PTime languages: translate once, then semi-naive evaluation;
    - weakly (frontier-)guarded: the five-step procedure of Section 7 —
      rewrite to weakly guarded, partially ground against the database
      (yielding a guarded theory), saturate to Datalog, evaluate. *)

open Guarded_core

type budget = {
  max_expansion_rules : int;
  max_saturation_rules : int;
  max_ground_rules : int;
}

let default_budget =
  { max_expansion_rules = 20_000; max_saturation_rules = 10_000; max_ground_rules = 200_000 }

type translation = {
  datalog : Theory.t;
  source_language : Classify.language;
  normalized : Theory.t;
}

exception Not_datalog_expressible of Classify.language

(* Translate a query theory into an answer-preserving Datalog program.
   Raises [Not_datalog_expressible] for the ExpTime-complete languages
   (weakly (frontier-)guarded), which Section 8 proves cannot be
   expressed in Datalog. *)
let to_datalog ?(budget = default_budget) (sigma : Theory.t) : translation =
  let normalized = Normalize.normalize sigma in
  let lang = Classify.classify normalized in
  let datalog =
    match lang with
    | Classify.Datalog -> normalized
    | Classify.Guarded ->
      let d, _ = Saturate.dat ~max_rules:budget.max_saturation_rules normalized in
      d
    | Classify.Nearly_guarded ->
      let d, _ = Saturate.dat_nearly_guarded ~max_rules:budget.max_saturation_rules normalized in
      d
    | Classify.Frontier_guarded ->
      let ng, _ =
        Rewrite_fg.rew_frontier_guarded ~max_rules:budget.max_expansion_rules normalized
      in
      let d, _ = Saturate.dat_nearly_guarded ~max_rules:budget.max_saturation_rules ng in
      d
    | Classify.Nearly_frontier_guarded ->
      let ng, _ =
        Rewrite_fg.rew_nearly_frontier_guarded ~max_rules:budget.max_expansion_rules normalized
      in
      let d, _ = Saturate.dat_nearly_guarded ~max_rules:budget.max_saturation_rules ng in
      d
    | (Classify.Weakly_guarded | Classify.Weakly_frontier_guarded | Classify.Unrestricted) as l ->
      raise (Not_datalog_expressible l)
  in
  { datalog; source_language = lang; normalized }

type served = {
  served_program : Theory.t;
  served_note : string;
}

(* The serving path shared by [guarded serve]/[guarded update] and the
   network server: translate once, serve as-is when the input is
   already stratified Datalog, else go through the Thm. 1/5 pipeline.
   One definition, so the CLI and the server cannot drift. *)
let serving_program ?budget (sigma : Theory.t) : served =
  if Theory.is_datalog sigma && Guarded_datalog.Stratify.is_stratified sigma then
    {
      served_program = sigma;
      served_note = Fmt.str "stratified Datalog, served as-is (%d rules)" (Theory.size sigma);
    }
  else begin
    let tr = to_datalog ?budget sigma in
    {
      served_program = tr.datalog;
      served_note =
        Fmt.str "%s theory translated to %d Datalog rules"
          (Classify.language_name tr.source_language)
          (Theory.size tr.datalog);
    }
  end

(* Theorem 2: weakly frontier-guarded to weakly guarded. Theories that
   are already weakly guarded are returned unchanged. *)
let to_weakly_guarded ?(budget = default_budget) (sigma : Theory.t) : Theory.t =
  let normalized = Normalize.normalize sigma in
  if Classify.is_weakly_guarded normalized then normalized
  else begin
    let r =
      Annotate.rew_weakly_frontier_guarded ~max_rules:budget.max_expansion_rules normalized
    in
    r.theory
  end

(* The five-step procedure of Section 7 for one input database. *)
let answer_weakly_guarded ?(budget = default_budget) (sigma : Theory.t) db ~query =
  let wg = to_weakly_guarded ~budget sigma in
  let grounded = Guarded_datalog.Grounding.partial_ground ~max_rules:budget.max_ground_rules wg db in
  if not (Classify.is_guarded grounded) then
    invalid_arg "Pipeline.answer_weakly_guarded: partial grounding did not yield a guarded theory";
  let datalog, _ = Saturate.dat ~max_rules:budget.max_saturation_rules grounded in
  Guarded_datalog.Seminaive.answers datalog db ~query

exception Answering_incomplete of string

(* Last resort when a translation budget blows: a direct chase. Exact
   when it saturates; otherwise the situation is reported rather than
   silently under-approximated. *)
let answer_via_chase (sigma : Theory.t) db ~query =
  let db = Database.copy db in
  Database.materialize_acdom db;
  let limits = { Guarded_chase.Engine.max_derivations = 50_000; max_depth = None } in
  match Guarded_chase.Engine.answers ~limits sigma db ~query with
  | ans, Guarded_chase.Engine.Saturated -> ans
  | _, Guarded_chase.Engine.Bounded ->
    raise
      (Answering_incomplete
         "translation budgets exceeded and the direct chase did not saturate; raise the budget")

(* Certain answers of (Σ, Q) over [db], choosing the procedure by the
   classification of the normalized theory. Falls back to a saturating
   chase when a translation budget is exceeded. *)
let answer ?(budget = default_budget) (sigma : Theory.t) db ~query =
  match to_datalog ~budget sigma with
  | { datalog; _ } -> Guarded_datalog.Seminaive.answers datalog db ~query
  | exception Not_datalog_expressible _ -> (
    try answer_weakly_guarded ~budget sigma db ~query
    with Expansion.Budget_exceeded _ | Saturate.Budget_exceeded _
       | Guarded_datalog.Grounding.Budget_exceeded _ ->
      answer_via_chase (Normalize.normalize sigma) db ~query)
  | exception (Expansion.Budget_exceeded _ | Saturate.Budget_exceeded _) ->
    answer_via_chase (Normalize.normalize sigma) db ~query

(* Answer through an already-computed translation — the serving path:
   translate once ({!to_datalog}), then evaluate the same Datalog
   program over many databases (or many versions of one database). *)
let answer_translated ?pool (tr : translation) db ~query =
  Guarded_datalog.Seminaive.answers ?pool tr.datalog db ~query

(* Ground-atom entailment through the same pipelines. *)
let entails ?budget (sigma : Theory.t) db atom =
  if not (Atom.is_ground atom) then invalid_arg "Pipeline.entails: atom must be ground";
  let tuples = answer ?budget sigma db ~query:(Atom.rel atom) in
  List.exists (fun args -> List.equal Term.equal args (Atom.args atom)) tuples
