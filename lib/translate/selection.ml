(** Selections (Definitions 7-9).

    A selection for a rule σ is a partial function μ from uvars(σ) to
    uvars(σ) with |ran(μ)| ≤ k, where k is the maximal relation arity of
    the theory. W.l.o.g. we enumerate retractions only: μ is the
    identity on its range and maps the remaining domain variables onto
    range representatives — for any homomorphism argument in the proof of
    Theorem 1 one can pick representatives inside each class, so nothing
    is lost and the enumeration shrinks drastically. *)

open Guarded_core

type t = Subst.t  (** variable-to-variable substitution *)

let apply (mu : t) atoms = Subst.apply_atoms mu atoms

let domain (mu : t) = Subst.domain mu

let range_vars (mu : t) =
  Term.Set.fold
    (fun t acc -> match t with Term.Var v -> Names.Sset.add v acc | Term.Const _ | Term.Null _ -> acc)
    (Subst.range mu) Names.Sset.empty

(* cov(σ, μ): body atoms whose variables all lie in dom(μ) (Def. 8).
   Only positive rules reach this code path. *)
let covered rule (mu : t) =
  let dom = domain mu in
  List.filter
    (fun b -> List.for_all (fun v -> Names.Sset.mem v dom) (Atom.arg_vars b))
    (Rule.body_atoms rule)

(* [cov], when the caller already computed it, avoids re-deriving the
   partition — the rewritings ask for it several times per selection. *)
let non_covered ?cov rule (mu : t) =
  let cov = match cov with Some c -> c | None -> covered rule mu in
  List.filter (fun b -> not (List.exists (Atom.equal b) cov)) (Rule.body_atoms rule)

(* keep(σ, μ): the images μ(x) of domain variables x that occur in a
   non-covered body atom — and, when [include_head] is set, in the head
   (Def. 9). The rc-rewriting needs the head variables in the interface
   (σ'' does not repeat μ(cov), so head variables occurring only there
   must travel through H); the rnc-rewriting must not include them
   (σ'' re-links them through μ(cov) itself — this is what the paper's
   Examples 5 and 6 compute, against the letter of Def. 9). *)
let keep ?(include_head = false) ?non_cov rule (mu : t) =
  let dom = domain mu in
  let non_cov = match non_cov with Some nc -> nc | None -> non_covered rule mu in
  let outside =
    List.fold_left
      (fun acc a -> Names.Sset.union acc (Atom.var_set a))
      (if include_head then Rule.head_vars rule else Names.Sset.empty)
      non_cov
  in
  Names.Sset.fold
    (fun x acc ->
      if Names.Sset.mem x outside then
        match Subst.find_opt x mu with
        | Some (Term.Var y) -> Names.Sset.add y acc
        | Some _ | None -> acc
      else acc)
    dom Names.Sset.empty
  |> Names.Sset.elements

(* All subsets of [l] of size at most [k]. *)
let rec subsets_up_to k l =
  match l with
  | [] -> [ [] ]
  | x :: rest ->
    let without = subsets_up_to k rest in
    if k = 0 then without
    else without @ List.map (fun s -> x :: s) (subsets_up_to (k - 1) rest)

let rec all_subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = all_subsets rest in
    without @ List.map (fun s -> x :: s) without

(* All retraction selections for [rule] with range size at most [k]. *)
let enumerate ~k rule : t list =
  let vars = Names.Sset.elements (Rule.uvars_args rule) in
  let ranges = subsets_up_to k vars in
  List.concat_map
    (fun range ->
      let identity =
        List.fold_left (fun acc v -> Subst.add v (Term.Var v) acc) Subst.empty range
      in
      let rest = List.filter (fun v -> not (List.mem v range)) vars in
      let targets = List.map (fun v -> Term.Var v) range in
      if targets = [] then [ identity ]
      else
        List.concat_map
          (fun extra -> Matching.extensions identity extra targets)
          (all_subsets rest))
    ranges

let pp ppf (mu : t) = Subst.pp ppf mu
