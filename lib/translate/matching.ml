(** Matching of atom conjunctions against atom conjunctions with
    variables on both sides (the target side is frozen).

    Used by the saturation calculus (Fig. 3, second inference rule) to
    enumerate homomorphisms h from γ2 into a rule head β: variables of
    the target are treated as distinct fresh constants, the pattern side
    is matched, and the result is thawed back into a substitution whose
    range may contain the target's variables. *)

open Guarded_core

let freeze_prefix = "$frozen$"

let freeze_term = function
  | Term.Var v -> Term.Const (freeze_prefix ^ v)
  | (Term.Const _ | Term.Null _) as t -> t

let thaw_term = function
  | Term.Const c when String.length c > String.length freeze_prefix
                      && String.sub c 0 (String.length freeze_prefix) = freeze_prefix ->
    Term.Var (String.sub c (String.length freeze_prefix) (String.length c - String.length freeze_prefix))
  | t -> t

let freeze_atom = Atom.map_terms freeze_term

(* All homomorphisms from [patterns] into the atom set [targets]
   (variables of [targets] are frozen). *)
let all patterns targets =
  let frozen = List.map freeze_atom targets in
  let db = Database.of_atoms frozen in
  Homomorphism.all patterns db
  |> List.map (fun subst ->
         Subst.of_list (List.map (fun (v, t) -> (v, thaw_term t)) (Subst.bindings subst)))

(* All extensions of [subst] mapping each variable of [vars] to one of
   the candidate terms [choices]. *)
let rec extensions subst vars choices =
  match vars with
  | [] -> [ subst ]
  | v :: rest ->
    List.concat_map
      (fun t -> extensions (Subst.add v t subst) rest choices)
      choices
