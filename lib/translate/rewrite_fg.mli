(** The rewriting rew(Σ) from (nearly) frontier-guarded to nearly
    guarded rules (Definitions 13-14, Theorem 1, Propositions 3-4).

    rew(Σ) is the expansion ex(Σ) with ACDom atoms added to the body of
    every non-guarded rule, which confines those rules to the input
    database's terms — exactly near-guardedness. *)

open Guarded_core

val acdom_guard_rule : Rule.t -> Rule.t
(** Adds ACDom(x) for every universal argument variable. *)

val rew_frontier_guarded : ?max_rules:int -> Theory.t -> Theory.t * Expansion.stats
(** Def. 13 for a normal frontier-guarded theory. The result is nearly
    guarded (Prop. 3) and has the same certain answers over databases
    with materialized ACDom (Thm. 1).
    @raise Invalid_argument when the input is not normal/FG.
    @raise Expansion.Budget_exceeded when the expansion exceeds the budget. *)

val rew_nearly_frontier_guarded : ?max_rules:int -> Theory.t -> Theory.t * Expansion.stats
(** Def. 14: rewrites the frontier-guarded part and keeps the remaining
    (unsafe-variable-free) Datalog rules (Prop. 4). *)
