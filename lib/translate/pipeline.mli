(** End-to-end translation and query-answering pipelines composing the
    paper's results (see the module implementation for the overview). *)

open Guarded_core

type budget = {
  max_expansion_rules : int;
  max_saturation_rules : int;
  max_ground_rules : int;
}

val default_budget : budget

type translation = {
  datalog : Theory.t;
  source_language : Classify.language;
  normalized : Theory.t;
}

exception Not_datalog_expressible of Classify.language

val to_datalog : ?budget:budget -> Theory.t -> translation
(** Compiles any theory of a PTime language of Figure 1 (up to nearly
    frontier-guarded) into an answer-preserving Datalog program.
    @raise Not_datalog_expressible for weakly (frontier-)guarded input
    (ExpTime-complete data complexity, Section 8). *)

type served = {
  served_program : Theory.t;  (** the stratified Datalog program to serve *)
  served_note : string;  (** one-line provenance, for startup logs *)
}

val serving_program : ?budget:budget -> Theory.t -> served
(** The serving path of [guarded serve]/[guarded update] and the
    network server ({!Guarded_server}): a theory that is already
    stratified Datalog is served as-is; anything else goes through
    {!to_datalog} (Thms. 1/5 — the rewriting is database-independent,
    so one translation serves every database and update).
    @raise Not_datalog_expressible for the ExpTime-complete
    languages. *)

val to_weakly_guarded : ?budget:budget -> Theory.t -> Theory.t
(** Theorem 2: normalizes and, if needed, rewrites a weakly
    frontier-guarded theory into a weakly guarded one. *)

val answer_weakly_guarded :
  ?budget:budget -> Theory.t -> Database.t -> query:string -> Term.t list list
(** The five-step procedure of Section 7: rewrite to weakly guarded,
    partially ground against the database, saturate to Datalog,
    evaluate. *)

exception Answering_incomplete of string

val answer : ?budget:budget -> Theory.t -> Database.t -> query:string -> Term.t list list
(** Certain answers, dispatching on the classification of the
    normalized theory. When a translation budget is exceeded, falls back
    to a direct chase (exact when it saturates).
    @raise Answering_incomplete when neither route can give an exact
    answer within the limits. *)

val answer_translated :
  ?pool:Guarded_par.Pool.t ->
  translation ->
  Database.t ->
  query:string ->
  Term.t list list
(** Certain answers through an already-computed {!translation} — the
    serving path of Thms. 1/5: the Datalog rewriting is
    database-independent, so one [to_datalog] result answers over any
    database (and is what [guarded serve] materializes
    incrementally). *)

val entails : ?budget:budget -> Theory.t -> Database.t -> Atom.t -> bool
