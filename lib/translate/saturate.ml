(** The saturation calculus of Figure 3 and the guarded-to-Datalog
    translation dat(Σ) (Definition 19, Theorem 3, Proposition 6).

    Ξ(Σ) closes Σ under three inference rules:
    - (project)  α → β ∧ A  yields  α → A   when A carries no
      existential variable;
    - (resolve)  from α → β and a Datalog rule γ1 ∧ γ2 → δ with a
      homomorphism h from γ2 into β such that vars(h(γ1)) ⊆ vars(α),
      derive α ∧ h(γ1) → β ∧ h(δ);
    - (unify)    α → β yields g(α) → g(β) for g : vars(α) → vars(α).

    dat(Σ) keeps the Datalog rules of the closure. Deduplication is up
    to variable renaming; the (unify) rule is applied through single
    merges x ↦ y, whose closure generates all non-injective g (injective
    g are renamings, hence no-ops modulo canonicalization). Heads and
    bodies are kept as sets. All derived rules stay guarded when the
    input is guarded, and no inference introduces variables, relations or
    constants, which bounds the closure as in the paper's counting
    argument; [max_rules] is a safety budget on top.

    {!closure} runs an indexed given-clause loop: committed rules carry
    a commit sequence number and live in relation-signature indexes
    (Datalog rules by body relation, existential rules by head
    relation), so resolution partners are retrieved by lookup instead
    of scanning the closure, each unordered pair is combined exactly
    once (by the later rule, against partners with smaller sequence
    numbers), and candidate generation for a whole round can fan out
    over a {!Guarded_par.Pool} while the commit phase stays sequential
    and deterministic. {!closure_reference} keeps the seed's
    snapshot-based loop as an independent oracle. *)

open Guarded_core
module Pool = Guarded_par.Pool

exception Budget_exceeded of string

type stats = {
  input_rules : int;
  closure_rules : int;
  datalog_rules : int;
  resolutions : int;
}

let dedup_atoms atoms = Atom.Set.elements (Atom.Set.of_list atoms)

let make_rule ?label body head evars_set =
  let head = dedup_atoms head in
  let evars =
    Names.Sset.elements
      (Names.Sset.inter evars_set
         (List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty head))
  in
  Rule.make_pos ?label (dedup_atoms body) head ~evars

(* (project): one rule per head atom without existential variables. *)
let project r =
  if Rule.is_datalog r && List.length (Rule.head r) = 1 then []
  else
    List.filter_map
      (fun a ->
        if Names.Sset.is_empty (Names.Sset.inter (Atom.var_set a) (Rule.evars r)) then
          Some (make_rule (Rule.body_atoms r) [ a ] Names.Sset.empty)
        else None)
      (Rule.head r)

(* (unify): all single merges x ↦ y over the body variables. Applying
   it to Datalog rules is pointless — g(α) → g(β) is an instance whose
   ground consequences the Datalog evaluation produces anyway — so only
   rules with existential variables are unified. *)
let unify r =
  if Rule.is_datalog r then []
  else
  let vars = Names.Sset.elements (Rule.uvars r) in
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y ->
          if String.equal x y then None
          else begin
            let g = Subst.singleton x (Term.Var y) in
            Some
              (make_rule
                 (Subst.apply_atoms g (Rule.body_atoms r))
                 (Subst.apply_atoms g (Rule.head r))
                 (Rule.evars r))
          end)
        vars)
    vars

(* All non-empty sublists of [l] paired with their complement. *)
let rec splits = function
  | [] -> [ ([], []) ]
  | x :: rest ->
    List.concat_map
      (fun (inside, outside) -> [ (x :: inside, outside); (inside, x :: outside) ])
      (splits rest)

(* (resolve): combine [r] (α → β) with the Datalog rule [d]
   (γ1 ∧ γ2 → δ). [d] is renamed apart first, with [gensym]: the fresh
   names never reach the produced rules (h and its extensions bind
   every partner variable into [r]'s variables — Datalog safety puts
   vars(δ) inside vars(γ1 ∧ γ2)), they only keep the partner
   variable-disjoint during matching. The indexed closure hands each
   generation task a private gensym because {!Names.gensym} state is
   not domain-safe.

   Consequence-driven restriction: the inference is only useful when it
   chains through an existential witness — [r] must have existential
   variables and the homomorphism must map some variable of γ2 onto one
   of them. A resolution entirely within the universal part of β is
   reconstructed at evaluation time from the projected Datalog rules
   α → Bi and the rule d itself, so dropping it loses no ground
   consequence while keeping the closure at the size the paper's
   consequence-driven references (EL, Horn-SHIQ) achieve. *)
let resolve_gensym = Names.gensym "rv"

let resolve_with gensym r d =
  if (not (Rule.is_datalog d)) || Rule.is_datalog r then []
  else begin
    let d = Rule.rename_apart gensym d in
    let alpha = Rule.body_atoms r in
    let beta = Rule.head r in
    let alpha_vars = Names.Sset.elements (Rule.uvars r) in
    let candidates = List.map (fun v -> Term.Var v) alpha_vars in
    (* Only atoms over a relation occurring in β can belong to γ2; the
       others are forced into γ1. This keeps the split enumeration
       proportional to the atoms that could possibly match. *)
    let beta_rels =
      List.fold_left (fun acc a -> Theory.Rel_set.add (Atom.rel_key a) acc) Theory.Rel_set.empty beta
    in
    let matchable, forced_gamma1 =
      List.partition (fun a -> Theory.Rel_set.mem (Atom.rel_key a) beta_rels) (Rule.body_atoms d)
    in
    if matchable = [] then []
    else
    List.concat_map
      (fun (gamma2, gamma1_rest) ->
        let gamma1 = gamma1_rest @ forced_gamma1 in
        if gamma2 = [] then []
        else
          List.concat_map
            (fun h ->
              (* Chain through an existential witness or skip. *)
              let hits_evar =
                Names.Sset.exists
                  (fun v ->
                    match Subst.find_opt v h with
                    | Some (Term.Var w) -> Names.Sset.mem w (Rule.evars r)
                    | Some _ | None -> false)
                  (Subst.domain h)
              in
              if not hits_evar then []
              else
              (* Extend h on the leftover variables of γ1 with variables
                 of α (the condition vars(h(γ1)) ⊆ vars(α) forces it). *)
              let leftover =
                Names.Sset.elements
                  (Names.Sset.diff
                     (List.fold_left
                        (fun acc a -> Names.Sset.union acc (Atom.var_set a))
                        Names.Sset.empty gamma1)
                     (Subst.domain h))
              in
              if leftover <> [] && candidates = [] then []
              else
                List.filter_map
                  (fun h ->
                    let h_gamma1 = Subst.apply_atoms h gamma1 in
                    let ok =
                      List.for_all
                        (fun a ->
                          Names.Sset.subset (Atom.var_set a) (Names.Sset.of_list alpha_vars))
                        h_gamma1
                    in
                    if not ok then None
                    else begin
                      let h_delta = Subst.apply_atoms h (Rule.head d) in
                      Some
                        (make_rule (alpha @ h_gamma1) (beta @ h_delta) (Rule.evars r))
                    end)
                  (Matching.extensions h leftover candidates))
            (Matching.all gamma2 beta))
      (splits matchable)
  end

let resolve r d = resolve_with resolve_gensym r d

(* ------------------------------------------------------------------ *)
(* Ξ(Σ): indexed given-clause closure                                  *)

(* A committed rule of the closure. The sequence number is its commit
   rank; resolution combines a rule only with partners of smaller rank,
   so every unordered (existential, Datalog) pair is generated exactly
   once — by whichever member committed later. *)
type entry = {
  en_rule : Rule.t;
  en_seq : int;
  en_datalog : bool;
  en_head_rels : int list;  (** sorted distinct head relation ids *)
  en_body_rels : int list;  (** sorted distinct body relation ids *)
  mutable en_dead : bool;  (** subsumed by a live rule (subsume mode) *)
  en_target : Subsumption.target option;  (** prepared once, subsume mode *)
}

let rel_ids atoms = List.sort_uniq Int.compare (List.map Atom.rel_id atoms)

let tbl_push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl key (ref [ v ])

(* Partners from [index] under any of [rels], deduplicated and in
   ascending commit order. *)
let gather index rels =
  List.concat_map
    (fun rel -> match Hashtbl.find_opt index rel with Some l -> !l | None -> [])
    rels
  |> List.sort_uniq (fun e1 e2 -> Int.compare e1.en_seq e2.en_seq)

let closure ?pool ?(max_rules = 10_000) ?(subsume = false) (sigma : Theory.t) :
    Theory.t * stats =
  List.iter
    (fun r ->
      if not (Rule.is_positive r) then invalid_arg "Saturate.closure: negation not supported")
    (Theory.rules sigma);
  (* Canonical dedup: a renaming-sensitive raw key (hash-consed atom
     ids) filters literal re-derivations before the canonical key is
     computed. *)
  let raw_seen : unit Rule.Key.Tbl.t = Rule.Key.Tbl.create 4096 in
  let seen : unit Rule.Key.Tbl.t = Rule.Key.Tbl.create 1024 in
  let entries = ref [] in
  (* reverse commit order *)
  let count = ref 0 in
  let resolutions = ref 0 in
  let queue : entry Queue.t = Queue.create () in
  let dat_by_body_rel : (int, entry list ref) Hashtbl.t = Hashtbl.create 64 in
  let exist_by_head_rel : (int, entry list ref) Hashtbl.t = Hashtbl.create 64 in
  (* Subsume mode: live single-head Datalog rules by head relation, the
     candidate sets of both subsumption directions. *)
  let sub_by_head_rel : (int, entry list ref) Hashtbl.t = Hashtbl.create 64 in
  let commit r =
    let raw = Rule.raw_key r in
    if not (Rule.Key.Tbl.mem raw_seen raw) then begin
      Rule.Key.Tbl.add raw_seen raw ();
      let key = Rule.canonical_key r in
      if not (Rule.Key.Tbl.mem seen key) then begin
        Rule.Key.Tbl.add seen key ();
        incr count;
        if !count > max_rules then
          raise (Budget_exceeded (Fmt.str "Ξ(Σ) exceeded %d rules" max_rules));
        let datalog = Rule.is_datalog r in
        let e =
          {
            en_rule = r;
            en_seq = !count;
            en_datalog = datalog;
            en_head_rels = rel_ids (Rule.head r);
            en_body_rels = rel_ids (Rule.body_atoms r);
            en_dead = false;
            en_target = (if subsume then Subsumption.prepare r else None);
          }
        in
        entries := e :: !entries;
        if datalog then List.iter (fun rel -> tbl_push dat_by_body_rel rel e) e.en_body_rels
        else List.iter (fun rel -> tbl_push exist_by_head_rel rel e) e.en_head_rels;
        (* Forward/backward subsumption inside the loop. Subsumed rules
           are only marked: they stay in the calculus (as given clauses
           and partners), so the closure's inference structure — and
           with it the Datalog fixpoint of the output — is exactly that
           of the unpruned run; the marks just drop redundant rules
           from the emitted theory. *)
        (match e.en_target with
        | Some tg ->
          let head_rel = Atom.rel_id (List.hd (Rule.head r)) in
          let peers =
            match Hashtbl.find_opt sub_by_head_rel head_rel with
            | Some l -> List.rev !l (* ascending commit order *)
            | None -> []
          in
          if
            List.exists
              (fun e' ->
                (not e'.en_dead)
                && Subsumption.rel_ids_subset e'.en_body_rels e.en_body_rels
                && Subsumption.subsumes_prepared e'.en_rule tg)
              peers
          then e.en_dead <- true
          else
            List.iter
              (fun e' ->
                if
                  (not e'.en_dead)
                  && Subsumption.rel_ids_subset e.en_body_rels e'.en_body_rels
                then
                  match e'.en_target with
                  | Some tg' when Subsumption.subsumes_prepared r tg' -> e'.en_dead <- true
                  | Some _ | None -> ())
              peers;
          tbl_push sub_by_head_rel head_rel e
        | None -> ());
        Queue.add e queue
      end
    end
  in
  (* Candidate generation for one given clause: pure apart from
     hash-cons interning (domain-safe), so a round's batch may run on a
     pool. Indexes are only mutated by the sequential commit phase. *)
  let process e =
    let r = e.en_rule in
    let gensym = Names.gensym (Fmt.str "rv!%d!" e.en_seq) in
    let resolved =
      if e.en_datalog then
        List.concat_map
          (fun e' -> if e'.en_seq < e.en_seq then resolve_with gensym e'.en_rule r else [])
          (gather exist_by_head_rel e.en_body_rels)
      else
        List.concat_map
          (fun e' -> if e'.en_seq < e.en_seq then resolve_with gensym r e'.en_rule else [])
          (gather dat_by_body_rel e.en_head_rels)
    in
    project r @ unify r @ resolved
  in
  List.iter commit (Theory.rules sigma);
  while not (Queue.is_empty queue) do
    let batch = Array.of_seq (Queue.to_seq queue) in
    Queue.clear queue;
    resolutions := !resolutions + Array.length batch;
    (* Generate in parallel, commit sequentially in batch order: the
       output rule sequence is independent of the pool (and of whether
       one is supplied at all). *)
    let candidates = Pool.parallel_map pool process batch in
    Array.iter (fun cs -> List.iter commit cs) candidates
  done;
  let live = List.filter (fun e -> not e.en_dead) (List.rev !entries) in
  let datalog_rules = List.length (List.filter (fun e -> e.en_datalog) live) in
  ( Theory.of_rules (List.map (fun e -> e.en_rule) live),
    {
      input_rules = Theory.size sigma;
      closure_rules = List.length live;
      datalog_rules;
      resolutions = !resolutions;
    } )

(* The seed's snapshot-based closure, kept verbatim as an independent
   oracle for the indexed loop (tests compare the two as canonical rule
   sets). Dedup uses the printed structural key of the canonicalized
   rule — deliberately not {!Rule.canonical_key} — so the oracle shares
   no fingerprinting code with {!closure}. *)
let closure_reference ?(max_rules = 10_000) (sigma : Theory.t) : Theory.t * stats =
  List.iter
    (fun r ->
      if not (Rule.is_positive r) then
        invalid_arg "Saturate.closure_reference: negation not supported")
    (Theory.rules sigma);
  let canonical_key r = Rule.structural_key (Rule.canonicalize r) in
  let seen : (Rule.structural_key, unit) Hashtbl.t = Hashtbl.create 1024 in
  let all = ref [] in
  (* The two resolution-partner classes, accumulated as rules arrive so
     neither pop re-filters the whole closure. *)
  let datalog = ref [] in
  let existential = ref [] in
  let count = ref 0 in
  let resolutions = ref 0 in
  let queue = Queue.create () in
  let add r =
    let key = canonical_key r in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr count;
      if !count > max_rules then
        raise (Budget_exceeded (Fmt.str "Ξ(Σ) exceeded %d rules" max_rules));
      all := r :: !all;
      if Rule.is_datalog r then datalog := r :: !datalog
      else existential := r :: !existential;
      Queue.add r queue
    end
  in
  List.iter add (Theory.rules sigma);
  while not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    List.iter add (project r);
    List.iter add (unify r);
    (* Resolve r (as α → β) against all current Datalog rules, and all
       current rules against r if r is Datalog. Snapshots are enough:
       later additions re-examine the pairs from their own turn. *)
    incr resolutions;
    let datalog_snapshot = !datalog in
    let existential_snapshot = !existential in
    if not (Rule.is_datalog r) then
      List.iter (fun d -> List.iter add (resolve r d)) datalog_snapshot
    else List.iter (fun r' -> List.iter add (resolve r' r)) existential_snapshot
  done;
  ( Theory.of_rules (List.rev !all),
    {
      input_rules = Theory.size sigma;
      closure_rules = !count;
      datalog_rules = List.length !datalog;
      resolutions = !resolutions;
    } )

(* dat(Σ) through the faithful closure: the Datalog rules of Ξ(Σ)
   (Def. 19 verbatim). Fine for small theories; use {!dat} for anything
   sizeable. *)
let dat_via_closure ?max_rules (sigma : Theory.t) : Theory.t * stats =
  let xi, stats = closure ?max_rules sigma in
  (Theory.of_rules (List.filter Rule.is_datalog (Theory.rules xi)), stats)

(* ------------------------------------------------------------------ *)
(* Consequence-driven dat(Σ)                                           *)

(* The faithful closure materializes every intermediate head subset as
   its own rule, which is exponentially wasteful. The consequence-driven
   variant keeps one object per (body, head-at-spawn): the head grows
   monotonically in place — sound because every added atom is a Datalog
   consequence of the same witness instance — and inferences that need
   extra body atoms h(γ1) or a variable unification g spawn a new object
   with the enlarged body / merged variables. Projections of saturated
   heads are emitted as Datalog rules and fed back as resolution
   partners, which is what nested existential propagation needs. This is
   the EL / Horn-SHIQ-style procedure the paper cites as the practical
   shape of Def. 19. *)

type obj = {
  o_body : Atom.t list;  (** sorted, deduplicated *)
  mutable o_head : Atom.Set.t;
  o_evars : Names.Sset.t;
  o_univ : Names.Sset.t;  (** universal variables: vars of the body *)
}

(* One way of resolving a Datalog rule into an object: the unifier
   restricted to the object's universal variables (the "g" to apply),
   the invented body atoms h(γ1) not present in the object, and the
   instantiated head h(δ) of the Datalog rule. *)
type resolution = {
  res_theta : Subst.t;  (** object-variable merges; empty = in place *)
  res_invented : Atom.t list;
  res_delta : Atom.t list;
}

(* Unification with three variable sorts: the Datalog rule's variables
   bind freely; the object's universal variables may merge with each
   other (Fig. 3's g : vars(α) → vars(α)); existential variables are
   rigid — they can only absorb rule variables. *)
let rec deref subst t =
  match t with
  | Term.Var v -> (
    match Subst.find_opt v subst with Some t' -> deref subst t' | None -> t)
  | Term.Const _ | Term.Null _ -> t

let unify_terms ~is_pattern ~is_univ subst t1 t2 =
  let t1 = deref subst t1 and t2 = deref subst t2 in
  if Term.equal t1 t2 then Some subst
  else
    match (t1, t2) with
    | Term.Var v, t when is_pattern v -> Some (Subst.add v t subst)
    | t, Term.Var v when is_pattern v -> Some (Subst.add v t subst)
    | Term.Var v1, Term.Var v2 when is_univ v1 && is_univ v2 ->
      Some (Subst.add v1 t2 subst)
    | _ -> None

let unify_atoms ~is_pattern ~is_univ subst pattern target =
  if Atom.rel_key pattern <> Atom.rel_key target then None
  else
    let rec go subst ps ts =
      match (ps, ts) with
      | [], [] -> Some subst
      | p :: ps, t :: ts -> (
        match unify_terms ~is_pattern ~is_univ subst p t with
        | None -> None
        | Some subst -> go subst ps ts)
      | [], _ :: _ | _ :: _, [] -> None
    in
    go subst (Atom.terms pattern) (Atom.terms target)

(* Structural resolution identity: the θ bindings (sorted by variable,
   courtesy of [Subst.bindings]) together with the sorted invented and
   delta atom lists. Replaces a [Fmt.str]-printed string key — string
   formatting in the inner resolution loop was measurable overhead and
   allocation churn. Hashing goes through the pure term structure
   (never [Term.id]/[Atom.id], whose assignment order depends on
   evaluation history), so table iteration order — and with it the
   saturation trace — is reproducible across runs. *)
module Res_key = struct
  type t = (string * Term.t) list * Atom.t list * Atom.t list

  (* [Atom.equal] is physical equality, valid by hash-consing. *)
  let equal (th1, i1, d1) (th2, i2, d2) =
    List.equal
      (fun (v1, t1) (v2, t2) -> String.equal v1 v2 && Term.equal t1 t2)
      th1 th2
    && List.equal Atom.equal i1 i2
    && List.equal Atom.equal d1 d2

  let atom_repr a = (Atom.rel a, Atom.ann a, Atom.args a)

  let hash (theta, invented, delta) =
    Hashtbl.hash (theta, List.map atom_repr invented, List.map atom_repr delta)
end

module Res_tbl = Hashtbl.Make (Res_key)

let resolution_key res : Res_key.t =
  ( Subst.bindings res.res_theta,
    List.sort Atom.compare res.res_invented,
    List.sort Atom.compare res.res_delta )

(* All resolutions of the Datalog rule [d] (renamed apart already) into
   [obj]. The search is anchored: one body atom of [d] is first unified
   with a head atom containing an existential variable (the
   consequence-driven condition), then the remaining atoms either unify
   with existing head/body atoms or are invented over the object's
   universal variables. [max_results] caps pathological fan-out. *)
let resolve_object ?(max_results = 4_000) obj d =
  let is_univ v = Names.Sset.mem v obj.o_univ in
  let is_evar v = Names.Sset.mem v obj.o_evars in
  let is_pattern v = not (is_univ v || is_evar v) in
  let unify_atoms = unify_atoms ~is_pattern ~is_univ in
  let head_atoms = Atom.Set.elements obj.o_head in
  let evar_heads =
    List.filter
      (fun a -> List.exists (fun v -> is_evar v) (Atom.vars a))
      head_atoms
  in
  let all_targets = head_atoms @ obj.o_body in
  let body = Rule.body_atoms d in
  let results : resolution Res_tbl.t = Res_tbl.create 16 in
  let overflow = ref false in
  let finish subst invented =
    if Res_tbl.length results < max_results then begin
      let resolve_atom a = Atom.map_terms (deref subst) a in
      let theta =
        Names.Sset.fold
          (fun v acc ->
            match deref subst (Term.Var v) with
            | Term.Var v' when String.equal v v' -> acc
            | t -> Subst.add v t acc)
          obj.o_univ Subst.empty
      in
      let res =
        {
          res_theta = theta;
          res_invented = List.map resolve_atom invented;
          res_delta = List.map resolve_atom (Rule.head d);
        }
      in
      Res_tbl.replace results (resolution_key res) res
    end
    else overflow := true
  in
  (* Process remaining atoms: unify with an existing atom, or invent. *)
  let rec go subst invented = function
    | [] -> finish subst invented
    | atom :: rest ->
      List.iter
        (fun target ->
          match unify_atoms subst atom target with
          | None -> ()
          | Some subst' -> go subst' invented rest)
        all_targets;
      (* Invention: the atom's image must live entirely on the object's
         universal variables (and constants). Unbound rule variables are
         enumerated over the universal variables. *)
      let instance = Atom.map_terms (deref subst) atom in
      let grounded_ok =
        List.for_all
          (fun t ->
            match t with
            | Term.Var v -> not (is_evar v)
            | Term.Const _ -> true
            | Term.Null _ -> false)
          (Atom.terms instance)
      in
      if grounded_ok then begin
        let unbound =
          List.sort_uniq String.compare (List.filter is_pattern (Atom.vars instance))
        in
        let candidates = Names.Sset.fold (fun v acc -> Term.Var v :: acc) obj.o_univ [] in
        if unbound = [] || candidates <> [] then
          List.iter
            (fun subst' -> go subst' (atom :: invented) rest)
            (Matching.extensions subst unbound candidates)
      end
  in
  (* Anchored start: some atom of [d] must bind an existential variable
     of a head atom. *)
  List.iteri
    (fun i anchor ->
      List.iter
        (fun target ->
          match unify_atoms Subst.empty anchor target with
          | None -> ()
          | Some subst ->
            let binds_evar =
              List.exists
                (fun v ->
                  match deref subst (Term.Var v) with
                  | Term.Var w -> is_evar w
                  | Term.Const _ | Term.Null _ -> false)
                (Atom.vars anchor)
            in
            if binds_evar then
              go subst [] (List.filteri (fun j _ -> j <> i) body))
        evar_heads)
    body;
  (Res_tbl.fold (fun _ r acc -> r :: acc) results [], !overflow)

let object_key body head =
  (* Head atoms ride along in the body so that the key needs no safety
     check on existential variables (it is only a canonical
     fingerprint). *)
  let h = Atom.Set.elements head in
  let pseudo = Rule.make_pos_unchecked (body @ h) (if h = [] then body else h) in
  Rule.canonical_key pseudo

(* A registered Datalog resolution partner: the original Datalog rules
   plus the projections emitted so far, deduplicated canonically. Each
   carries one variable-renamed copy made at registration: resolution
   needs the partner variable-disjoint from the object, and renaming in
   the inner loop would re-intern every atom of every partner for every
   object pass. The cached copy is reused whenever its variables miss
   the object (the common case — its names are private gensyms); a
   fresh rename happens only after a collision, i.e. when the object
   absorbed this partner's variables in an earlier resolution. *)
type partner = {
  p_seq : int;  (** registration rank: iteration stays in this order *)
  p_rule : Rule.t;
  p_renamed : Rule.t;
  p_vars : Names.Sset.t;  (** variables of the renamed copy *)
}

(* dat(Σ) for a guarded (or any positive existential) theory, computed
   consequence-driven. *)
let dat ?(max_rules = 200_000) (sigma : Theory.t) : Theory.t * stats =
  List.iter
    (fun r ->
      if not (Rule.is_positive r) then invalid_arg "Saturate.dat: negation not supported")
    (Theory.rules sigma);
  let datalog0, existential = List.partition Rule.is_datalog (Theory.rules sigma) in
  (* Partners are indexed by body relation id: an object retrieves the
     rules that can anchor into its head by relation lookup instead of
     scanning (and re-filtering) the whole partner list on every local
     saturation pass. *)
  let partners_by_rel : (int, partner list ref) Hashtbl.t = Hashtbl.create 64 in
  let partner_count = ref 0 in
  let register_partner d =
    incr partner_count;
    let renamed = Rule.rename_apart resolve_gensym d in
    let p = { p_seq = !partner_count; p_rule = d; p_renamed = renamed; p_vars = Rule.vars renamed } in
    List.iter (fun rel -> tbl_push partners_by_rel rel p) (rel_ids (Rule.body_atoms d))
  in
  let partner_seen : unit Rule.Key.Tbl.t = Rule.Key.Tbl.create 256 in
  List.iter
    (fun d ->
      Rule.Key.Tbl.replace partner_seen (Rule.canonical_key d) ();
      register_partner d)
    datalog0;
  let budget = ref (max_rules - List.length datalog0) in
  (* The rule budget does not bound the unification search inside
     resolutions (heads can grow large while producing few new rules),
     so a separate work budget caps total resolution effort. *)
  let work = ref (200 * max_rules) in
  let spend n =
    work := !work - n;
    if !work < 0 then
      raise (Budget_exceeded (Fmt.str "dat(Σ) exceeded its work budget (%d rules)" max_rules))
  in
  let projections = ref [] in
  let add_partner r =
    let key = Rule.canonical_key r in
    if not (Rule.Key.Tbl.mem partner_seen key) then begin
      Rule.Key.Tbl.replace partner_seen key ();
      decr budget;
      if !budget < 0 then raise (Budget_exceeded (Fmt.str "dat(Σ) exceeded %d rules" max_rules));
      register_partner r;
      projections := r :: !projections;
      true
    end
    else false
  in
  let objects : obj list ref = ref [] in
  let object_seen : unit Rule.Key.Tbl.t = Rule.Key.Tbl.create 256 in
  let spawn body head evars =
    let body = dedup_atoms body in
    let key = object_key body head in
    if not (Rule.Key.Tbl.mem object_seen key) then begin
      Rule.Key.Tbl.replace object_seen key ();
      decr budget;
      if !budget < 0 then raise (Budget_exceeded (Fmt.str "dat(Σ) exceeded %d rules" max_rules));
      let univ =
        List.fold_left
          (fun acc a -> Names.Sset.union acc (Atom.var_set a))
          Names.Sset.empty body
      in
      objects := { o_body = body; o_head = head; o_evars = evars; o_univ = univ } :: !objects
    end
  in
  List.iter
    (fun r -> spawn (Rule.body_atoms r) (Atom.Set.of_list (Rule.head r)) (Rule.evars r))
    existential;
  (* Project the saturated head of [obj] into Datalog partner rules. *)
  let project_object obj =
    Atom.Set.fold
      (fun a changed ->
        if Names.Sset.is_empty (Names.Sset.inter (Atom.var_set a) obj.o_evars) then
          add_partner (make_rule obj.o_body [ a ] Names.Sset.empty) || changed
        else changed)
      obj.o_head false
  in
  (* A Datalog partner is relevant to an object only if one of its body
     relations occurs in a head atom carrying an existential variable —
     otherwise no resolution can anchor. Those relation ids key the
     partner index. *)
  let evar_rels obj =
    rel_ids
      (Atom.Set.fold
         (fun a acc ->
           if List.exists (fun v -> Names.Sset.mem v obj.o_evars) (Atom.vars a) then a :: acc
           else acc)
         obj.o_head [])
  in
  let gather_partners rels =
    List.concat_map
      (fun rel -> match Hashtbl.find_opt partners_by_rel rel with Some l -> !l | None -> [])
      rels
    |> List.sort_uniq (fun p1 p2 -> Int.compare p1.p_seq p2.p_seq)
  in
  (* Global fixpoint: saturate every object against the current partner
     set; new projections or spawned objects trigger another pass. *)
  let overflowed = ref false in
  let changed = ref true in
  while !changed do
    changed := false;
    let object_snapshot = !objects in
    List.iter
      (fun obj ->
        let local = ref true in
        while !local do
          local := false;
          List.iter
            (fun { p_rule = d0; p_renamed = d_renamed; p_vars = d_vars; _ } ->
              spend (1 + Atom.Set.cardinal obj.o_head);
              let d =
                if
                  Names.Sset.exists
                    (fun v ->
                      Names.Sset.mem v obj.o_univ || Names.Sset.mem v obj.o_evars)
                    d_vars
                then Rule.rename_apart resolve_gensym d0
                else d_renamed
              in
              let resolutions, overflow = resolve_object obj d in
              spend (List.length resolutions);
              if overflow then overflowed := true;
              List.iter
                (fun res ->
                  let in_place =
                    Subst.is_empty res.res_theta
                    && List.for_all
                         (fun a -> List.exists (Atom.equal a) obj.o_body)
                         res.res_invented
                  in
                  if in_place then begin
                    let fresh =
                      List.filter (fun a -> not (Atom.Set.mem a obj.o_head)) res.res_delta
                    in
                    if fresh <> [] then begin
                      obj.o_head <- Atom.Set.union obj.o_head (Atom.Set.of_list fresh);
                      local := true;
                      changed := true
                    end
                  end
                  else begin
                    let g = res.res_theta in
                    spawn
                      (Subst.apply_atoms g obj.o_body @ res.res_invented)
                      (Atom.Set.union
                         (Atom.Set.of_list (Subst.apply_atoms g (Atom.Set.elements obj.o_head)))
                         (Atom.Set.of_list res.res_delta))
                      obj.o_evars
                  end)
                resolutions)
            (gather_partners (evar_rels obj))
        done;
        if project_object obj then changed := true)
      object_snapshot;
    if List.length !objects > List.length object_snapshot then changed := true
  done;
  if !overflowed then
    Logs.warn (fun m -> m "Saturate.dat: resolution fan-out was capped; result may be incomplete");
  let datalog_rules = Theory.dedup (Theory.of_rules (datalog0 @ List.rev !projections)) in
  ( datalog_rules,
    {
      input_rules = Theory.size sigma;
      closure_rules = List.length !objects + Theory.size datalog_rules;
      datalog_rules = Theory.size datalog_rules;
      resolutions = List.length !objects;
    } )

(* Prop. 6: a nearly guarded theory translates to dat(Σg) ∪ Σd. *)
let dat_nearly_guarded ?max_rules (sigma : Theory.t) : Theory.t * stats =
  let guarded_part, datalog_part =
    List.partition Classify.is_guarded_rule (Theory.rules sigma)
  in
  let ap = Classify.affected_positions sigma in
  List.iter
    (fun r ->
      if not (Rule.is_datalog r && Names.Sset.is_empty (Classify.unsafe_vars ~ap r)) then
        invalid_arg (Fmt.str "Saturate.dat_nearly_guarded: rule %a is not nearly guarded" Rule.pp r))
    datalog_part;
  let datalog_of_guarded, stats = dat ?max_rules (Theory.of_rules guarded_part) in
  (Theory.of_rules (Theory.rules datalog_of_guarded @ datalog_part), stats)
