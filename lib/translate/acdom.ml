(** Axiomatization of the built-in ACDom relation (Def. 15, Prop. 5).

    Σ* replaces every relation R by a fresh copy R* and adds rules
    copying the input database into the starred signature, populating
    ACDom* with every term occurring in an input fact, and asserting
    ACDom*(c) for every constant of the theory. The result contains no
    occurrence of the built-in ACDom and computes the same answers under
    the starred output relation. *)

open Guarded_core

let star = "__star"

let star_rel name = name ^ star

let star_atom a = Atom.make ~ann:(Atom.ann a) (star_rel (Atom.rel a)) (Atom.args a)

(* Numbered variables x1..xn for the copy rules. *)
let numbered_vars n = List.init n (fun i -> Term.Var (Printf.sprintf "x%d" i))

let axiomatize (sigma : Theory.t) : Theory.t =
  let relations = Theory.relation_list sigma in
  let starred_rules =
    List.map
      (fun r ->
        Rule.make ?label:(Rule.label r)
          ~evars:(Names.Sset.elements (Rule.evars r))
          (List.map (Literal.map_atom star_atom) (Rule.body r))
          (List.map star_atom (Rule.head r)))
      (Theory.rules sigma)
  in
  let acdom_star = star_rel Database.acdom_rel in
  let copy_rules =
    List.concat_map
      (fun (name, ann_len, arity) ->
        if ann_len > 0 then
          invalid_arg "Acdom.axiomatize: annotated relations are not expected here"
        else if String.equal name Database.acdom_rel then []
        else begin
          let vars = numbered_vars arity in
          let base = Atom.make name vars in
          (* (a) copy the input relation into its starred version. *)
          Rule.make_pos [ base ] [ Atom.make (star_rel name) vars ]
          :: (* (b) every argument of an input fact is in the active domain. *)
          List.map (fun v -> Rule.make_pos [ base ] [ Atom.make acdom_star [ v ] ]) vars
        end)
      relations
  in
  (* (c) the constants of the theory belong to the active domain. *)
  let const_rules =
    List.map
      (fun c -> Rule.make_pos [] [ Atom.make acdom_star [ Term.Const c ] ])
      (Names.Sset.elements (Theory.constants sigma))
  in
  Theory.of_rules (starred_rules @ copy_rules @ const_rules)

(* The query relation moves to its starred copy. *)
let star_query q = star_rel q
