(** Rule subsumption for shrinking translated Datalog programs: a rule
    whose head and body map into another's (head onto head, body into
    body) makes the latter redundant. *)

open Guarded_core

val eligible : Rule.t -> bool
(** Rules the subsumption test covers: positive single-head Datalog.
    Everything else is conservatively incomparable. *)

type target
(** A rule in target (subsumee) position, frozen once: its variables
    are turned into reserved constants and its body atoms indexed in a
    {!Database}, so probing many candidate subsumers against it shares
    all of that work. *)

val prepare : Rule.t -> target option
(** [None] exactly when the rule is not {!eligible}. *)

val subsumes_prepared : Rule.t -> target -> bool
(** [subsumes_prepared r1 tg]: does [r1] subsume the rule [tg] was
    prepared from? *)

val subsumes : Rule.t -> Rule.t -> bool
(** [subsumes r1 r2]: deleting [r2] in the presence of [r1] preserves
    the fixpoint on every database. Positive single-head Datalog only
    (conservatively false otherwise). [prepare] + [subsumes_prepared]
    in one step; prepare the target yourself when testing one rule
    against many candidates. *)

val rel_ids_subset : int list -> int list -> bool
(** Subset test on sorted distinct relation-id lists — the body-relation
    prefilter ([rel_ids_subset (body rels of subsumer) (body rels of
    target)] is necessary for subsumption), shared with the index in
    {!Saturate.closure}. *)

val reduce : Theory.t -> Theory.t
(** Deduplicates, then removes every rule subsumed by a surviving one
    (the earliest of mutually subsuming rules survives). Candidate
    pairs are retrieved from a head-relation index with a
    body-relation subset prefilter rather than scanned quadratically. *)
