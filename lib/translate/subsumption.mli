(** Rule subsumption for shrinking translated Datalog programs: a rule
    whose head and body map into another's (head onto head, body into
    body) makes the latter redundant. *)

open Guarded_core

val subsumes : Rule.t -> Rule.t -> bool
(** [subsumes r1 r2]: deleting [r2] in the presence of [r1] preserves
    the fixpoint on every database. Positive single-head Datalog only
    (conservatively false otherwise). *)

val reduce : Theory.t -> Theory.t
(** Deduplicates, then removes every rule subsumed by a surviving one. *)
