(** The rc- ("remove covered") and rnc- ("remove non-covered") rewritings
    of Definitions 10 and 11.

    Both rewritings split a non-guarded Datalog rule σ of a normal
    frontier-guarded theory into a guarded rule and a structurally
    smaller frontier-guarded rule, communicating through a fresh
    relation H over keep(σ, μ). The guard atoms R(~x) demanded by the
    definitions ("an arbitrary relation from Σ whose arguments contain
    the required variables") are enumerated as injective placements of
    the required variables into the relation's argument positions, the
    remaining positions being padded with fresh variables — a padded
    position matches any term, so the padded patterns subsume every
    repetition pattern a chase atom could exhibit.

    Annotated relations are handled as in Section 5.2: the annotation
    variables demanded by the head are placed into the guard's
    annotation slots the same way, so the produced rules remain safely
    annotated. *)

open Guarded_core

(* All injective placements of [needed] into [arity] slots; the other
   slots are filled by pad variables named deterministically from the
   slot index, skipping any name in [avoid] (callers pass every
   variable of the rule under construction, so a pad — unlike the
   globally fresh gensym pads this replaces — can never capture a rule
   variable, including pads inherited from earlier rewriting rounds).
   Determinism matters: re-deriving the same guard yields the
   hash-consed same atom, so the closure's raw dedup catches the repeat
   before paying for canonicalization. Returns a list of term lists. *)
let placements ?(pad = "!p") ?(avoid = Names.Sset.empty) needed arity =
  let n = List.length needed in
  if n > arity then []
  else begin
    let avoid = List.fold_left (fun acc v -> Names.Sset.add v acc) avoid needed in
    let pads = Array.make (max 1 arity) "" in
    let next = ref 0 in
    for i = 0 to arity - 1 do
      let rec pick () =
        let name = Printf.sprintf "%s%d" pad !next in
        incr next;
        if Names.Sset.mem name avoid then pick () else name
      in
      pads.(i) <- pick ()
    done;
    let rec choose slots vars =
      match vars with
      | [] -> [ List.map (fun _ -> None) slots ]
      | v :: rest ->
        List.concat_map
          (fun filled ->
            (* insert [v] at each free slot of [filled] *)
            let rec insert prefix = function
              | [] -> []
              | None :: suffix ->
                (List.rev_append prefix (Some v :: suffix))
                :: insert (None :: prefix) suffix
              | (Some _ as s) :: suffix -> insert (s :: prefix) suffix
            in
            insert [] filled)
          (choose slots rest)
    in
    let slots = List.init arity (fun _ -> ()) in
    choose slots needed
    |> List.map
         (List.mapi (fun i slot ->
              match slot with
              | Some v -> Term.Var v
              | None -> Term.Var pads.(i)))
  end

(* Guard atoms over the candidate relations: [needed_args] are placed
   injectively into argument slots, [needed_ann] into annotation slots.
   [avoid] holds every variable of the rule the guard will join. *)
let guard_atoms ?(avoid = Names.Sset.empty) ~relations ~needed_args ~needed_ann () =
  let avoid =
    List.fold_left (fun acc v -> Names.Sset.add v acc) avoid (needed_args @ needed_ann)
  in
  List.concat_map
    (fun (name, ann_len, arity) ->
      if String.equal name Database.acdom_rel then []
      else
        List.concat_map
          (fun args ->
            (* distinct pad namespaces: an annotation pad sharing a name
               with an argument pad would wrongly equate the two slots *)
            List.map
              (fun ann -> Atom.make ~ann name args)
              (placements ~pad:"!a" ~avoid needed_ann ann_len))
          (placements ~avoid needed_args arity))
    relations

(* Memoized guard enumeration. A guard set is a function of the needed
   variables, the candidate relations (identified by the caller-chosen
   tag — callers keep tags consistent with relation lists within one
   memo's lifetime) and the pad-namespace names of [avoid]: only names
   starting with ['!'] can collide with the deterministic ["!p<i>"] /
   ["!a<i>"] pads, so all other [avoid] entries cannot influence the
   output. Guard enumeration dominates bulk rewriting, and across the
   selections of an expansion the same key recurs constantly. *)
type guard_memo = (int * string list * string list * string list, Atom.t list) Hashtbl.t

let guard_memo () : guard_memo = Hashtbl.create 256

(* Per-H guard-family memo: the σ' guard variants of a rewriting are
   determined, up to renaming, by the content key of H (the guard set is
   enumerated equivariantly from μ(cov) resp. μ(rem) and keep, which the
   key captures canonically). Once the family of a given H name has been
   emitted, re-deriving it from a renamed occurrence can only produce
   canonical duplicates, so the rewriting may skip it — and when the
   first occurrence had no guards, every occurrence is inert. The table
   maps H name to that emptiness verdict. *)
type family_memo = {
  fam_s1 : (string, bool) Hashtbl.t;  (* H name -> σ' family non-empty *)
  fam_s2 : bool Rule.Key.Tbl.t;  (* key of H::μ(cov) ⇒ μ(head) -> σ'' family non-empty *)
  fam_ck : (string * Rule.Key.t) Rule.Key.Tbl.t;  (* raw ids -> content key *)
  fam_k2 : Rule.Key.t Rule.Key.Tbl.t;  (* raw ids -> σ'' family key *)
}

let family_memo () : family_memo =
  {
    fam_s1 = Hashtbl.create 64;
    fam_s2 = Rule.Key.Tbl.create 64;
    fam_ck = Rule.Key.Tbl.create 256;
    fam_k2 = Rule.Key.Tbl.create 256;
  }

(* Renaming-sensitive identity of a (tagged) atom list plus variable
   tuple plus annotation tuple, from interned ids: a cheap pre-key for
   memoizing the canonicalizations below, hit whenever a rewriting
   re-derives literally the same content (hash-consing makes the ids
   coincide). *)
let raw_of ~tag atoms vars anns =
  let buf = ref [ tag ] in
  List.iter (fun a -> buf := Atom.id a :: !buf) atoms;
  buf := -1 :: !buf;
  List.iter (fun v -> buf := Term.id (Term.intern (Term.Var v)) :: !buf) vars;
  buf := -2 :: !buf;
  List.iter (fun t -> buf := Term.id (Term.intern t) :: !buf) anns;
  Rule.Key.make (Array.of_list (List.rev !buf))

let guard_atoms_memo ?memo ~rel_tag ~avoid ~relations ~needed_args ~needed_ann () =
  match memo with
  | None -> guard_atoms ~avoid ~relations ~needed_args ~needed_ann ()
  | Some (tbl : guard_memo) ->
    let pads =
      Names.Sset.fold
        (fun v acc -> if String.length v > 0 && v.[0] = '!' then v :: acc else acc)
        avoid []
    in
    let key = (rel_tag, needed_args, needed_ann, pads) in
    (match Hashtbl.find_opt tbl key with
    | Some atoms -> atoms
    | None ->
      let atoms = guard_atoms ~avoid ~relations ~needed_args ~needed_ann () in
      Hashtbl.add tbl key atoms;
      atoms)

let arg_vars_of atoms =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.arg_var_set a)) Names.Sset.empty atoms

let ann_vars_of atoms =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc t -> match t with Term.Var v -> Names.Sset.add v acc | Term.Const _ | Term.Null _ -> acc)
        acc (Atom.ann a))
    Names.Sset.empty atoms

(* The single head atom of a normal rule. *)
let the_head rule =
  match Rule.head rule with
  | [ h ] -> h
  | _ -> invalid_arg "Rewritings: rule is not in normal form (non-singleton head)"

(* Content-based name for the fresh relation H: the canonical form of
   its defining body together with the keep tuple. Two rewritings (from
   any rules and selections) whose H would have literally the same
   definition share the relation, which keeps the closure small and is
   sound: the shared relation has the same extension in every chase. *)
type content_key = string * Rule.Key.t

let content_key kind defining_body keep ann : content_key =
  (* The keep tuple rides in the body as a pseudo atom, so the key sees
     keep variables even when they are absent from the defining body
     (possible for head-only variables). *)
  let h = Atom.make ~ann "$H" (List.map (fun v -> Term.Var v) keep) in
  let pseudo = Rule.make_pos_unchecked (h :: defining_body) [ h ] in
  (kind, Rule.canonical_key pseudo)

let content_key_memo ?families ~tag kind defining_body keep ann =
  match families with
  | None -> content_key kind defining_body keep ann
  | Some fam -> (
    let raw = raw_of ~tag defining_body keep ann in
    match Rule.Key.Tbl.find_opt fam.fam_ck raw with
    | Some ck -> ck
    | None ->
      let ck = content_key kind defining_body keep ann in
      Rule.Key.Tbl.add fam.fam_ck raw ck;
      ck)

(* rc-rewriting of [rule] w.r.t. [mu] (Def. 10). Returns [] if the
   variable-projection condition fails, otherwise the rule σ'' together
   with all guard variants of σ'. The fresh head relation name is
   obtained from [name_of], a memoized gensym keyed by content. *)
let rc ?memo ?families ?cov ?non_cov ~relations ~name_of rule (mu : Selection.t) =
  let cov = match cov with Some c -> c | None -> Selection.covered rule mu in
  if cov = [] then []
  else begin
    let mu_cov = Selection.apply mu cov in
    let keep = Selection.keep ~include_head:true ?non_cov rule mu in
    let keep_set = Names.Sset.of_list keep in
    let projected = Names.Sset.diff (arg_vars_of mu_cov) keep_set in
    (* (b) variable projection: μ(cov) must lose at least one variable. *)
    if Names.Sset.is_empty projected then []
    else begin
      let head = the_head rule in
      let h_name =
        name_of (content_key_memo ?families ~tag:0 "rc" mu_cov keep (Atom.ann head))
      in
      let h_atom = Atom.make ~ann:(Atom.ann head) h_name (List.map (fun v -> Term.Var v) keep) in
      let remainder =
        let nc = match non_cov with Some nc -> nc | None -> Selection.non_covered ~cov rule mu in
        Selection.apply mu nc
      in
      let sigma2 =
        Rule.make_pos ?label:(Rule.label rule) (h_atom :: remainder)
          [ Subst.apply_atom mu head ]
      in
      let needed_args = Names.Sset.elements (Names.Sset.union (arg_vars_of mu_cov) keep_set) in
      let needed_ann =
        Names.Sset.elements
          (Names.Sset.diff (ann_vars_of [ h_atom ]) (ann_vars_of mu_cov))
      in
      let avoid =
        List.fold_left
          (fun acc a -> Names.Sset.union acc (Atom.var_set a))
          Names.Sset.empty (h_atom :: mu_cov)
      in
      (* Guard variants are safe by construction — the guard hosts every
         needed argument and annotation variable injectively — so the
         bulk constructor may skip the per-rule safety folds. *)
      let emit_sigma1s () =
        List.map
          (fun guard -> Rule.make_pos_unchecked (guard :: mu_cov) [ h_atom ])
          (guard_atoms_memo ?memo ~rel_tag:0 ~avoid ~relations ~needed_args ~needed_ann ())
      in
      (* If no relation can host the guard, H is underivable and the
         whole rewriting is inert: contribute nothing. *)
      match families with
      | None ->
        let sigma1s = emit_sigma1s () in
        if sigma1s = [] then [] else sigma2 :: sigma1s
      | Some (fam : family_memo) -> (
        match Hashtbl.find_opt fam.fam_s1 h_name with
        | Some false -> []
        | Some true -> [ sigma2 ]
        | None ->
          let sigma1s = emit_sigma1s () in
          Hashtbl.add fam.fam_s1 h_name (sigma1s <> []);
          if sigma1s = [] then [] else sigma2 :: sigma1s)
    end
  end

(* rnc-rewriting of [rule] w.r.t. [mu] (Def. 11). Returns all guard
   variants of σ' and σ''. *)
let rnc ?memo ?families ?cov ?non_cov ~node_relations ~all_relations ~name_of rule
    (mu : Selection.t) =
  let cov = match cov with Some c -> c | None -> Selection.covered rule mu in
  let non_cov = match non_cov with Some nc -> nc | None -> Selection.non_covered ~cov rule mu in
  if non_cov = [] then []
  else begin
    let mu_rem = Selection.apply mu non_cov in
    let mu_cov = Selection.apply mu cov in
    let keep = Selection.keep ~include_head:false ~non_cov rule mu in
    let keep_set = Names.Sset.of_list keep in
    (* (b) variable projection: some variable of μ(body \ cov) is placed
       in the guard but not kept. *)
    let z_candidates = Names.Sset.elements (Names.Sset.diff (arg_vars_of mu_rem) keep_set) in
    if z_candidates = [] then []
    else begin
      let head = the_head rule in
      let h_name =
        name_of (content_key_memo ?families ~tag:1 "rnc" mu_rem keep (Atom.ann head))
      in
      let h_atom = Atom.make ~ann:(Atom.ann head) h_name (List.map (fun v -> Term.Var v) keep) in
      let needed_ann_s1 =
        Names.Sset.elements (Names.Sset.diff (ann_vars_of [ h_atom ]) (ann_vars_of mu_rem))
      in
      (* σ' fires on database constants (it is ACDom-guarded in rew),
         so its guard may be any relation of Σ. *)
      let avoid_s1 =
        List.fold_left
          (fun acc a -> Names.Sset.union acc (Atom.var_set a))
          Names.Sset.empty (h_atom :: mu_rem)
      in
      (* Safe by construction: the guard hosts keep ∪ {z} and the missing
         annotation variables, the rest of H's variables occur in μ(rem). *)
      let emit_sigma1s () =
        List.concat_map
          (fun z ->
            List.map
              (fun guard -> Rule.make_pos_unchecked (guard :: mu_rem) [ h_atom ])
              (guard_atoms_memo ?memo ~rel_tag:1 ~avoid:avoid_s1 ~relations:all_relations
                 ~needed_args:(Names.Sset.elements (Names.Sset.add z keep_set))
                 ~needed_ann:needed_ann_s1 ()))
          z_candidates
      in
      let mu_head = Subst.apply_atom mu head in
      let needed_args_s2 =
        Names.Sset.elements
          (Names.Sset.union keep_set
             (Names.Sset.union (arg_vars_of mu_cov) (Atom.arg_var_set mu_head)))
      in
      (* σ'' matches inside a chase-tree node, whose terms all occur in
         the node-creating atom: an existential-head guard suffices. *)
      let avoid_s2 =
        List.fold_left
          (fun acc a -> Names.Sset.union acc (Atom.var_set a))
          Names.Sset.empty (mu_head :: h_atom :: mu_cov)
      in
      let emit_sigma2s () =
        List.map
          (fun guard ->
            Rule.make_pos ?label:(Rule.label rule) (guard :: h_atom :: mu_cov) [ mu_head ])
          (guard_atoms_memo ?memo ~rel_tag:2 ~avoid:avoid_s2 ~relations:node_relations
             ~needed_args:needed_args_s2 ~needed_ann:[] ())
      in
      (* Either half missing makes the rewriting inert: skip it. *)
      match families with
      | None ->
        let sigma1s = emit_sigma1s () in
        let sigma2s = emit_sigma2s () in
        if sigma1s = [] || sigma2s = [] then [] else sigma1s @ sigma2s
      | Some (fam : family_memo) ->
        (* σ'' is memoized by the canonical key of H(keep)::μ(cov) ⇒
           μ(head): the key pins H positionally (its relation name is
           part of it), so key-equal occurrences enumerate σ'' families
           that are renamings of each other — canonical duplicates for
           the closure. The σ' verdict is consulted only when σ'' is
           non-empty, and vice versa the σ'' verdict is shared across
           occurrences of the same key, whose σ' verdict coincides (the
           key determines the H name): no half-emitted rewriting can
           result. *)
        let key2 =
          let raw = raw_of ~tag:2 (mu_head :: h_atom :: mu_cov) [] [] in
          match Rule.Key.Tbl.find_opt fam.fam_k2 raw with
          | Some k -> k
          | None ->
            let k =
              Rule.canonical_key (Rule.make_pos_unchecked (h_atom :: mu_cov) [ mu_head ])
            in
            Rule.Key.Tbl.add fam.fam_k2 raw k;
            k
        in
        let sigma2s, s2_nonempty =
          match Rule.Key.Tbl.find_opt fam.fam_s2 key2 with
          | Some b -> ([], b)
          | None ->
            let s2 = emit_sigma2s () in
            Rule.Key.Tbl.add fam.fam_s2 key2 (s2 <> []);
            (s2, s2 <> [])
        in
        if not s2_nonempty then []
        else begin
          let sigma1s, s1_nonempty =
            match Hashtbl.find_opt fam.fam_s1 h_name with
            | Some b -> ([], b)
            | None ->
              let s1 = emit_sigma1s () in
              Hashtbl.add fam.fam_s1 h_name (s1 <> []);
              (s1, s1 <> [])
          in
          if not s1_nonempty then [] else sigma1s @ sigma2s
        end
    end
  end
