(** The expansion ex(Σ) of a normal frontier-guarded theory (Def. 12):
    the closure of Σ under rc- and rnc-rewritings, with canonical
    deduplication, content-keyed auxiliary relations, and the paper's
    decreasing measure (variables outside the frontier guard) bounding
    the recursion. *)

open Guarded_core

exception Budget_exceeded of string

type stats = {
  input_rules : int;
  output_rules : int;
  aux_relations : int;
  processed : int;  (** rules that went through the rewriting step *)
}

val measure : Rule.t -> int
(** Number of variables outside the rule's fixed frontier guard. *)

val expand :
  ?max_rules:int ->
  ?guards:[ `Node_relations | `All_relations ] ->
  Theory.t ->
  Theory.t * stats
(** [guards] selects the guard-relation enumeration: [`Node_relations]
    (default) restricts rc-σ′ / rnc-σ″ guards to existential-head
    relations as justified by the chase-tree argument; [`All_relations]
    is the paper-literal enumeration, kept for the ablation bench. *)

