(** The saturation calculus of Figure 3 and the guarded-to-Datalog
    translation dat(Σ) (Definition 19, Theorem 3, Proposition 6).

    Two implementations are provided:
    - {!closure} / {!dat_via_closure}: the calculus of Figure 3 taken
      literally (modulo the consequence-driven restrictions that skip
      inferences reconstructible at evaluation time) — every derived
      rule is materialized, by an indexed given-clause loop.
      {!closure_reference} is the unindexed seed loop, kept as an
      oracle. Right for small theories and for inspecting derivations
      such as Example 7.
    - {!dat}: the consequence-driven formulation (EL / Horn-SHIQ style):
      one object per (body, head) state whose head grows in place;
      resolutions that need variable unifications or extra body atoms
      spawn new objects; saturated heads are projected into Datalog
      rules. This is the one the pipelines use. *)

open Guarded_core

exception Budget_exceeded of string

type stats = {
  input_rules : int;
  closure_rules : int;
  datalog_rules : int;
  resolutions : int;
}

val project : Rule.t -> Rule.t list
(** Fig. 3's first rule: α → A for each head atom A without existential
    variables. *)

val unify : Rule.t -> Rule.t list
(** Fig. 3's third rule through single merges x ↦ y (their closure
    generates every non-injective g). *)

val resolve : Rule.t -> Rule.t -> Rule.t list
(** Fig. 3's second rule: resolve the Datalog second argument into the
    head of the first. *)

val closure :
  ?pool:Guarded_par.Pool.t ->
  ?max_rules:int ->
  ?subsume:bool ->
  Theory.t ->
  Theory.t * stats
(** Ξ(Σ): the closure of Σ under the three inference rules, computed by
    an indexed given-clause loop. Committed rules live in
    relation-signature indexes (Datalog rules by body relation,
    existential rules by head relation), so each given clause retrieves
    its resolution partners by lookup, and every unordered pair is
    combined exactly once. Rules are deduplicated by
    {!Rule.canonical_key} (renaming-invariant) behind a
    renaming-sensitive {!Rule.raw_key} prefilter.

    [pool] parallelizes candidate generation across each round's given
    clauses; commits stay sequential in round order, so the resulting
    theory and stats are identical with and without a pool.

    [subsume] additionally runs forward/backward subsumption
    ({!Subsumption}) over single-head Datalog rules at commit time.
    Subsumed rules are excluded from the returned theory (and
    [closure_rules] / [datalog_rules]) but still take part in the
    saturation itself, so the output's Datalog fixpoint is exactly that
    of the unpruned closure. Default [false] — the output then matches
    {!closure_reference} as a canonical rule set. *)

val closure_reference : ?max_rules:int -> Theory.t -> Theory.t * stats
(** The seed's snapshot-based closure loop, kept verbatim as an
    independent oracle: no indexes, no pool, dedup by printed structural
    key of the canonicalized rule. Same closure as {!closure} (as a set
    of rules up to renaming) — the test suite holds the two to that. *)

val dat_via_closure : ?max_rules:int -> Theory.t -> Theory.t * stats
(** The Datalog rules of Ξ(Σ) (Def. 19 verbatim). *)

val dat : ?max_rules:int -> Theory.t -> Theory.t * stats
(** Consequence-driven dat(Σ) for a guarded (or any positive) theory:
    same certain answers as Σ on every database (Thm. 3).

    Invariant (three variable sorts). Every variable taking part in a
    resolution belongs to exactly one of three disjoint sorts, and the
    internal unifier treats them asymmetrically:
    - {e pattern} variables — the renamed-apart Datalog partner's own
      variables — bind freely to any term;
    - {e universal} variables of the object under saturation (the
      variables of its body α) may merge only with each other,
      implementing Fig. 3's g : vars(α) → vars(α);
    - {e existential} variables of the object are rigid: they are never
      substituted, and may only absorb pattern variables — a resolution
      must chain through such a witness to be admissible (the
      consequence-driven condition).
    Partners are renamed apart before unification, so the sorts are
    disjoint by construction; a variable violating this (e.g. a partner
    sharing a name with the object after a collision) forces a fresh
    renaming first. *)

val dat_nearly_guarded : ?max_rules:int -> Theory.t -> Theory.t * stats
(** Prop. 6: dat(Σg) ∪ Σd for a nearly guarded theory. *)
