(** The saturation calculus of Figure 3 and the guarded-to-Datalog
    translation dat(Σ) (Definition 19, Theorem 3, Proposition 6).

    Two implementations are provided:
    - {!closure} / {!dat_via_closure}: the calculus of Figure 3 taken
      literally (modulo the consequence-driven restrictions that skip
      inferences reconstructible at evaluation time) — every derived
      rule is materialized. Right for small theories and for inspecting
      derivations such as Example 7.
    - {!dat}: the consequence-driven formulation (EL / Horn-SHIQ style):
      one object per (body, head) state whose head grows in place;
      resolutions that need variable unifications or extra body atoms
      spawn new objects; saturated heads are projected into Datalog
      rules. This is the one the pipelines use. *)

open Guarded_core

exception Budget_exceeded of string

type stats = {
  input_rules : int;
  closure_rules : int;
  datalog_rules : int;
  resolutions : int;
}

val project : Rule.t -> Rule.t list
(** Fig. 3's first rule: α → A for each head atom A without existential
    variables. *)

val unify : Rule.t -> Rule.t list
(** Fig. 3's third rule through single merges x ↦ y (their closure
    generates every non-injective g). *)

val resolve : Rule.t -> Rule.t -> Rule.t list
(** Fig. 3's second rule: resolve the Datalog second argument into the
    head of the first. *)

val closure : ?max_rules:int -> Theory.t -> Theory.t * stats
(** Ξ(Σ): the closure of Σ under the three inference rules. *)

val dat_via_closure : ?max_rules:int -> Theory.t -> Theory.t * stats
(** The Datalog rules of Ξ(Σ) (Def. 19 verbatim). *)

val dat : ?max_rules:int -> Theory.t -> Theory.t * stats
(** Consequence-driven dat(Σ) for a guarded (or any positive) theory:
    same certain answers as Σ on every database (Thm. 3). *)

val dat_nearly_guarded : ?max_rules:int -> Theory.t -> Theory.t * stats
(** Prop. 6: dat(Σg) ∪ Σd for a nearly guarded theory. *)
