(** Axiomatization of the built-in ACDom relation (Def. 15, Prop. 5).

    Σ* replaces every relation R of Σ by a fresh copy R*, copies the
    input database into the starred signature, populates ACDom* with
    every argument of an input fact over Σ's relations, and asserts the
    theory's constants. The result has no occurrence of the built-in
    ACDom and the same answers under starred output relations. *)

open Guarded_core

val star_rel : string -> string
val star_query : string -> string

val axiomatize : Theory.t -> Theory.t
