(** The rewriting rew(Σ) from (nearly) frontier-guarded to nearly
    guarded rules (Definitions 13-14, Theorem 1, Propositions 3-4).

    rew(Σ) is the expansion ex(Σ) with an atom ACDom(x) added to the body
    of every non-guarded rule for each of its universal (argument)
    variables: every non-guarded rule then only operates on terms of the
    input database, which is exactly near-guardedness. For a nearly
    frontier-guarded theory, the frontier-guarded part is rewritten and
    the remaining Datalog rules (which have no unsafe variables) are kept
    unchanged. *)

open Guarded_core

(* Add ACDom(x) to the body of [r] for every universal argument variable. *)
let acdom_guard_rule r =
  let acdom_atoms =
    List.map
      (fun v -> Literal.Pos (Atom.make Database.acdom_rel [ Term.Var v ]))
      (Names.Sset.elements (Rule.uvars_args r))
  in
  Rule.make ?label:(Rule.label r)
    ~evars:(Names.Sset.elements (Rule.evars r))
    (Rule.body r @ acdom_atoms)
    (Rule.head r)

(* rew for a normal frontier-guarded theory (Def. 13). *)
let rew_frontier_guarded ?max_rules (sigma : Theory.t) : Theory.t * Expansion.stats =
  if not (Normalize.is_normal sigma) then
    invalid_arg "Rewrite_fg.rew_frontier_guarded: theory is not normal";
  if not (Classify.is_frontier_guarded sigma) then
    invalid_arg "Rewrite_fg.rew_frontier_guarded: theory is not frontier-guarded";
  let ex, stats = Expansion.expand ?max_rules sigma in
  let rewritten =
    List.map
      (fun r -> if Classify.is_guarded_rule r then r else acdom_guard_rule r)
      (Theory.rules ex)
  in
  (Theory.of_rules rewritten, stats)

(* rew for a normal nearly frontier-guarded theory (Def. 14):
   rew(Σf) ∪ Σd where Σf collects the frontier-guarded rules. *)
let rew_nearly_frontier_guarded ?max_rules (sigma : Theory.t) : Theory.t * Expansion.stats =
  if not (Normalize.is_normal sigma) then
    invalid_arg "Rewrite_fg.rew_nearly_frontier_guarded: theory is not normal";
  let ap = Classify.affected_positions sigma in
  let frontier_part, datalog_part =
    List.partition Classify.is_frontier_guarded_rule (Theory.rules sigma)
  in
  List.iter
    (fun r ->
      if not (Names.Sset.is_empty (Classify.unsafe_vars ~ap r) && Rule.is_datalog r) then
        invalid_arg
          (Fmt.str "Rewrite_fg: rule %a is not nearly frontier-guarded" Rule.pp r))
    datalog_part;
  let rewritten, stats = rew_frontier_guarded ?max_rules (Theory.of_rules frontier_part) in
  (Theory.of_rules (Theory.rules rewritten @ datalog_part), stats)
