(** The expansion ex(Σ) of a normal frontier-guarded theory (Def. 12):
    the closure of Σ under all rc- and rnc-rewritings.

    Each non-guarded Datalog rule is combined with every selection; the
    resulting guarded rules are collected, the resulting smaller
    frontier-guarded rules are processed recursively. Two sources of
    non-termination in a naive reading are tamed exactly as the paper's
    counting argument expects:
    - rules are deduplicated up to variable renaming (canonical forms);
    - the fresh relation H of a rewriting is keyed by the canonical form
      of the pair (σ, μ) and the rewriting kind, so re-deriving the same
      rewriting reuses the same name instead of minting a fresh one.

    The closure is exponential in the worst case; [max_rules] guards
    against runaway inputs. *)

open Guarded_core

exception Budget_exceeded of string

type stats = {
  input_rules : int;
  output_rules : int;
  aux_relations : int;
  processed : int;
}

let h_gensym = Names.gensym "Aux"

(* Number of variables of [r] outside its fixed frontier guard: the
   decreasing measure of the paper's termination argument. *)
let measure r =
  match Classify.frontier_guard r with
  | None -> Names.Sset.cardinal (Rule.vars r)
  | Some fg -> Names.Sset.cardinal (Names.Sset.diff (Rule.vars r) (Atom.var_set fg))

let expand ?(max_rules = 20_000) ?(guards = `Node_relations) (sigma : Theory.t) :
    Theory.t * stats =
  List.iter
    (fun r ->
      if not (Rule.is_positive r) then invalid_arg "Expansion.expand: negation not supported")
    (Theory.rules sigma);
  (* Goal direction: the guard atoms of the rewritings stand for atoms
     that create chase-tree nodes, and in a normal theory those are
     exactly the heads of the (guarded) existential rules. Restricting
     the "arbitrary relation from Σ" of Defs. 10-11 to these relations
     loses nothing (homomorphisms into the root are handled by the
     ACDom-guarded original rules) and prunes the expansion massively.
     [guards = `All_relations] reverts to the paper-literal enumeration,
     kept for the ablation benchmark. *)
  let all_relations = Theory.relation_list sigma in
  let node_relations =
    match guards with
    | `All_relations -> all_relations
    | `Node_relations ->
      Theory.Rel_set.elements
        (List.fold_left
           (fun acc r ->
             if Names.Sset.is_empty (Rule.evars r) then acc
             else
               List.fold_left
                 (fun acc h -> Theory.Rel_set.add (Atom.rel_key h) acc)
                 acc (Rule.head r))
           Theory.Rel_set.empty (Theory.rules sigma))
  in
  let k =
    List.fold_left (fun acc (_, _, arity) -> max acc arity) 0 (Theory.relation_list sigma)
  in
  let seen : unit Rule.Key.Tbl.t = Rule.Key.Tbl.create 1024 in
  (* Renaming-sensitive pre-filter: rewritings re-derive many literally
     identical rules (hash-consing makes their atom ids coincide), and a
     raw-key hit skips the canonicalization below entirely. *)
  let raw_seen : unit Rule.Key.Tbl.t = Rule.Key.Tbl.create 4096 in
  let names : (Rewritings.content_key, string) Hashtbl.t = Hashtbl.create 256 in
  let memo = Rewritings.guard_memo () in
  let families = Rewritings.family_memo () in
  let result = ref [] in
  let count = ref 0 in
  let processed = ref 0 in
  let queue = Queue.create () in
  let needs_processing r =
    Rule.is_datalog r && not (Classify.is_guarded_rule r)
  in
  (* [bound] is the strict upper bound on the measure of rules that may
     still be rewritten (the paper's variable-projection argument). *)
  let add ~bound r =
    let raw = Rule.raw_key r in
    if not (Rule.Key.Tbl.mem raw_seen raw) then begin
      Rule.Key.Tbl.add raw_seen raw ();
      let key = Rule.canonical_key r in
      if not (Rule.Key.Tbl.mem seen key) then begin
        Rule.Key.Tbl.add seen key ();
        incr count;
        if !count > max_rules then
          raise (Budget_exceeded (Fmt.str "ex(Σ) exceeded %d rules" max_rules));
        result := r :: !result;
        if needs_processing r && measure r < bound then Queue.add r queue
      end
    end
  in
  List.iter (fun r -> add ~bound:max_int r) (Theory.rules sigma);
  let name_of key =
    match Hashtbl.find_opt names key with
    | Some name -> name
    | None ->
      let name = Names.fresh h_gensym in
      Hashtbl.add names key name;
      name
  in
  while not (Queue.is_empty queue) do
    let rule = Queue.pop queue in
    incr processed;
    let bound = measure rule in
    let fg = Classify.frontier_guard rule in
    let selections = Selection.enumerate ~k rule in
    List.iter
      (fun mu ->
        (* The proof of Thm. 1 applies an rnc-rewriting when the image
           of the frontier guard lies in the node (so fg is covered) and
           an rc-rewriting otherwise. The cov/non-cov partition is
           computed once here and shared with the rewriting. *)
        let cov = Selection.covered rule mu in
        let non_cov = Selection.non_covered ~cov rule mu in
        let fg_covered =
          match fg with
          | None -> false
          | Some fg -> List.exists (Atom.equal fg) cov
        in
        let out =
          if fg_covered then
            Rewritings.rnc ~memo ~families ~cov ~non_cov ~node_relations ~all_relations
              ~name_of rule mu
          else
            Rewritings.rc ~memo ~families ~cov ~non_cov ~relations:node_relations ~name_of
              rule mu
        in
        List.iter (add ~bound) out)
      selections
  done;
  ( Theory.of_rules (List.rev !result),
    {
      input_rules = Theory.size sigma;
      output_rules = !count;
      aux_relations = Hashtbl.length names;
      processed = !processed;
    } )
