(** Relation-name annotations and the weakly-frontier-guarded to
    weakly-guarded translation (Definitions 16-18, Theorem 2). *)

open Guarded_core

(** A properized theory together with the per-relation argument
    permutations that made the affected positions a prefix (Def. 16). *)
type properized = {
  theory : Theory.t;
  perms : (Atom.rel_key, int array) Hashtbl.t;
}

val properize : Theory.t -> properized
val permute_db : properized -> Database.t -> Database.t
val unpermute_atom : properized -> Atom.t -> Atom.t

val annotate : Theory.t -> Theory.t
(** a(Σ): moves terms in non-affected (suffix) positions into relation
    annotations (Def. 17). The theory must be proper. *)

val annotate_db : Theory.t -> Database.t -> Database.t

val deannotate_atom : Atom.t -> Atom.t
val deannotate : Theory.t -> Theory.t
(** a⁻(Σ): R[~v](~t) becomes R(~t, ~v) (Def. 18). *)

val renormalize : Theory.t -> Theory.t
(** Re-guards existential rules whose guard lost variables to
    annotations, via a fresh annotated frontier relation. *)

type result = {
  theory : Theory.t;  (** the weakly guarded rew(Σ), original layout *)
  stats : Expansion.stats;
}

val rew_weakly_frontier_guarded : ?max_rules:int -> Theory.t -> result
(** rew(Σ) = a⁻(rew(a(Σ))) for a normal weakly frontier-guarded theory
    (Thm. 2), properizing first and restoring the original argument
    order afterwards.
    @raise Invalid_argument when a safe variable occurs at an affected
    head position — the corner of Def. 17 the paper's sketch glosses
    over (see DESIGN.md). *)
