(** Deciders for the chase-termination hierarchy
    weak ⊆ joint ⊆ super-weak acyclicity, with machine-checkable
    verdicts.

    Each decider returns a certificate (a rank function over the
    relevant dependency graph, strictly increasing along its edges) or
    a concrete cycle as counterexample. The [verify_*] functions
    re-derive the graph and audit the witness, so verdicts can be
    checked independently of the decision procedure. All three classes
    certify that the restricted (and skolem) chase terminates on every
    database. *)

open Guarded_core

type position = Classify.position

type edge_kind = Acyclicity.edge_kind =
  | Regular
  | Special

type evar = int * string
(** An existential variable, as (rule index, variable name). *)

type wa_verdict =
  | Wa_acyclic of (position * int) list
      (** ranks: non-decreasing along regular position-graph edges,
          strictly increasing along special ones *)
  | Wa_cyclic of (position * edge_kind) list
      (** a position cycle through a special edge; each element carries
          the kind of the edge to its cyclic successor *)

type ja_verdict =
  | Ja_acyclic of (evar * int) list
      (** topological ranks of the existential dependency graph *)
  | Ja_cyclic of evar list  (** an existential dependency cycle *)

type swa_verdict =
  | Swa_acyclic of (int * int) list
      (** topological ranks of the rules in the trigger graph *)
  | Swa_cyclic of int list  (** a rule-index trigger cycle *)

val weak : Theory.t -> wa_verdict
(** Fagin-Kolaitis-Miller-Popa weak acyclicity over {!Posgraph}. *)

val joint : Theory.t -> ja_verdict
(** Krötzsch-Rudolph joint acyclicity: Ω(z) position closures and the
    existential dependency graph. *)

val super_weak : Theory.t -> swa_verdict
(** Marnette super-weak acyclicity: place-level Move closures over the
    skolemized theory and the rule trigger graph. *)

val verify_weak : Theory.t -> wa_verdict -> bool
val verify_joint : Theory.t -> ja_verdict -> bool
val verify_super_weak : Theory.t -> swa_verdict -> bool

val pp_evar : evar Fmt.t
val pp_wa_verdict : wa_verdict Fmt.t
val pp_ja_verdict : ja_verdict Fmt.t
val pp_swa_verdict : swa_verdict Fmt.t
