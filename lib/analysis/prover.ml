(** The bounded-chase prover: probe termination by actually running the
    restricted chase under escalating derivation budgets.

    A [Saturated] outcome is a termination certificate in the most
    direct sense — the finite chase itself (of the probed database;
    when none is supplied, of the {e critical instance}: every relation
    populated over the theory's constants plus one fresh constant, the
    canonical hardest finite input). A probe that exhausts its budgets
    reports the offending recursive rule cycle: the super-weak trigger
    cycle when one exists, otherwise a recursive dependency component
    containing an existential rule.

    The default probe input is the {e distinct-constants instance}: one
    tuple per relation, every slot a fresh constant. The classic
    critical instance (full population over the constants plus one
    fresh) trivializes the {e restricted} chase — with every relation
    fully populated, every existential head is already satisfied and
    nothing fires — so it is exposed separately for callers probing the
    oblivious chase, where its saturation is an all-instance
    certificate (Marnette). *)

open Guarded_core
module Engine = Guarded_chase.Engine

type probe = {
  outcome : Engine.outcome;
  db : Database.t;  (** the chase of the last attempt *)
  atoms : int;
  nulls : int;  (** distinct labeled nulls in [db] *)
  derivations : int;
  budget : int;  (** [max_derivations] of the last attempt *)
  rule_cycle : Rule.t list;  (** offending cycle when [Bounded]; [[]] otherwise *)
}

let default_budgets = [ 1_000; 10_000; 100_000 ]

let count_nulls db =
  let seen = Hashtbl.create 64 in
  Database.fold
    (fun a () ->
      List.iter
        (function Term.Null n -> Hashtbl.replace seen n () | Term.Const _ | Term.Var _ -> ())
        (Atom.terms a))
    db ();
  Hashtbl.length seen

let critical_instance ?(cap = 2048) sigma =
  let consts = Names.Sset.elements (Theory.constants sigma) in
  let rec fresh i =
    let c = if i = 0 then "crit" else Fmt.str "crit%d" i in
    if List.mem c consts then fresh (i + 1) else c
  in
  let star = fresh 0 in
  let consts = Array.of_list (star :: consts) in
  let k = Array.length consts in
  let db = Database.create () in
  List.iter
    (fun ((rel, ann_ar, arity) : Atom.rel_key) ->
      let total = ann_ar + arity in
      (* Tuple count k^total, capped: past the cap populate only the
         all-fresh tuple — the probe stays sound, just less adversarial. *)
      let count =
        let rec pow acc n = if n = 0 then acc else if acc > cap then acc else pow (acc * k) (n - 1) in
        pow 1 total
      in
      let add terms =
        let ann = List.filteri (fun i _ -> i < ann_ar) terms in
        let args = List.filteri (fun i _ -> i >= ann_ar) terms in
        ignore (Database.add db (Atom.make ~ann rel args))
      in
      if count > cap then add (List.init total (fun _ -> Term.Const star))
      else
        let rec tuples slot acc =
          if slot = total then add (List.rev acc)
          else
            for c = 0 to k - 1 do
              tuples (slot + 1) (Term.Const consts.(c) :: acc)
            done
        in
        tuples 0 [])
    (Theory.relation_list sigma);
  db

(* A prefix generating constants disjoint from the theory's. *)
let fresh_prefix sigma =
  let consts = Names.Sset.elements (Theory.constants sigma) in
  let rec go p =
    if List.exists (String.starts_with ~prefix:p) consts then go ("_" ^ p) else p
  in
  go "probe"

let probe_instance sigma =
  let prefix = fresh_prefix sigma in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Term.Const (Fmt.str "%s%d" prefix !counter)
  in
  let db = Database.create () in
  List.iter
    (fun ((rel, ann_ar, arity) : Atom.rel_key) ->
      let ann = List.init ann_ar (fun _ -> fresh ()) in
      let args = List.init arity (fun _ -> fresh ()) in
      ignore (Database.add db (Atom.make ~ann rel args)))
    (Theory.relation_list sigma);
  db

(* The cycle to blame for a budget-exhausted probe. *)
let offending_cycle sigma =
  match Acyclic.super_weak sigma with
  | Acyclic.Swa_cyclic cycle ->
    let rules = Array.of_list (Theory.rules sigma) in
    List.map (fun i -> rules.(i)) cycle
  | Acyclic.Swa_acyclic _ -> (
    (* Certified acyclic yet out of budget: the chase is finite but
       larger than the budget. Point at a recursive component with an
       existential rule (the chase-size driver), if any. *)
    let recursive comp =
      let heads = Theory.head_relations comp in
      List.exists
        (fun r ->
          List.exists (fun a -> Theory.Rel_set.mem (Atom.rel_key a) heads) (Rule.body_atoms r))
        (Theory.rules comp)
    in
    let candidate comp =
      recursive comp
      && List.exists (fun r -> not (Names.Sset.is_empty (Rule.evars r))) (Theory.rules comp)
    in
    match List.find_opt candidate (Guarded_datalog.Depgraph.rule_components sigma) with
    | Some comp -> Theory.rules comp
    | None -> [])

let prove ?db ?(budgets = default_budgets) ?pool sigma =
  if not (Theory.is_positive sigma) then
    invalid_arg "Prover.prove: negation is not supported (probe the positive part)";
  let budgets = if budgets = [] then default_budgets else budgets in
  let base = match db with Some d -> d | None -> probe_instance sigma in
  let attempt budget =
    let limits = { Engine.default_limits with max_derivations = budget } in
    let res = Engine.run ~limits ~variant:Engine.Restricted ~record_steps:false ?pool sigma base in
    {
      outcome = res.outcome;
      db = res.db;
      atoms = Database.cardinal res.db;
      nulls = count_nulls res.db;
      derivations = res.derivations;
      budget;
      rule_cycle = [];
    }
  in
  let rec go = function
    | [] -> assert false
    | [ b ] -> attempt b
    | b :: rest -> (
      let probe = attempt b in
      match probe.outcome with Engine.Saturated -> probe | Engine.Bounded -> go rest)
  in
  let probe = go budgets in
  match probe.outcome with
  | Engine.Saturated -> probe
  | Engine.Bounded -> { probe with rule_cycle = offending_cycle sigma }

let pp_probe ppf p =
  match p.outcome with
  | Engine.Saturated ->
    Fmt.pf ppf "saturated (%d atoms, %d nulls, %d derivations, budget %d)" p.atoms p.nulls
      p.derivations p.budget
  | Engine.Bounded ->
    Fmt.pf ppf "exhausted budget %d (%d derivations, %d atoms; offending cycle: %d rules)"
      p.budget p.derivations p.atoms (List.length p.rule_cycle)
