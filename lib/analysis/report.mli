(** Combined analysis report: Figure-1 language classification plus the
    chase-termination verdict from the acyclicity deciders and the
    bounded-chase probe. *)

open Guarded_core

type klass =
  | Weakly_acyclic
  | Jointly_acyclic
  | Super_weakly_acyclic

type termination =
  | Terminating of klass  (** decider-certified: every database *)
  | Probe_finite
      (** no certificate, but the probed instance's restricted chase is
          finite — other databases may diverge *)
  | Unknown

type t = {
  language : Classify.language;
  wa : Acyclic.wa_verdict;
  ja : Acyclic.ja_verdict;
  swa : Acyclic.swa_verdict;
  probe : Prover.probe option;  (** [None] when the theory has negation *)
  termination : termination;
}

val klass_name : klass -> string

val analyze : ?budgets:int list -> ?pool:Guarded_par.Pool.t -> Theory.t -> t
(** Runs all three deciders and, on positive theories, the bounded
    chase probe over the distinct-constants instance. The verdict picks
    the strongest certificate: weak ⊆ joint ⊆ super-weak, with the
    probe as instance-level fallback evidence. *)

val pp_termination : t Fmt.t
(** The one-line verdict, e.g.
    ["terminating (weakly acyclic; finite chase: 42 atoms, ...)"]. *)

val pp : t Fmt.t
(** The full multi-line report ending in a ["termination: ..."] line. *)
