(** The position graph of a theory (the FKMP dependency graph), indexed
    for the termination deciders.

    Nodes are argument positions (relation, index). A frontier variable
    at body position [p] and head position [h] induces a regular edge
    [p -> h]; if the same rule invents an existential variable at head
    position [e], each such [p] also gets a special edge [p => e]. The
    theory is weakly acyclic iff no cycle passes through a special edge
    — equivalently, iff no special edge stays inside one strongly
    connected component. *)

open Guarded_core

type position = Classify.position

type edge_kind = Acyclicity.edge_kind =
  | Regular
  | Special

type t

val of_theory : Theory.t -> t
(** Builds the graph over every argument position of the theory's
    signature (isolated positions included, so certificates rank the
    full signature). *)

val positions : t -> position list
val node_count : t -> int
val edges : t -> (position * position * edge_kind) list
val successors : t -> position -> (position * edge_kind) list

val component : t -> position -> int
(** Topological strongly-connected-component number: every edge
    [p -> q] has [component p <= component q], with equality exactly
    when [p] and [q] are in one component.
    @raise Invalid_argument on a position outside the signature. *)

val component_count : t -> int

val special_cycle : t -> (position * edge_kind) list option
(** A cycle through a special edge, as [(position, kind of the edge to
    the cyclic successor)] pairs — the special edge first. [None] iff
    the theory is weakly acyclic. *)

val pp_position : position Fmt.t
