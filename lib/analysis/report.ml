(** The analysis entry point: language classification (Figure 1 of the
    paper) plus the chase-termination verdict — the three acyclicity
    deciders and the bounded-chase probe, combined into a single
    report. *)

open Guarded_core

type klass =
  | Weakly_acyclic
  | Jointly_acyclic
  | Super_weakly_acyclic

type termination =
  | Terminating of klass  (** decider-certified: every database *)
  | Probe_finite
      (** no certificate, but the probed instance's restricted chase is
          finite — other databases may diverge *)
  | Unknown  (** every decider found a cycle and the probe ran out of budget *)

type t = {
  language : Classify.language;
  wa : Acyclic.wa_verdict;
  ja : Acyclic.ja_verdict;
  swa : Acyclic.swa_verdict;
  probe : Prover.probe option;  (** [None] when the theory has negation *)
  termination : termination;
}

let klass_name = function
  | Weakly_acyclic -> "weakly acyclic"
  | Jointly_acyclic -> "jointly acyclic"
  | Super_weakly_acyclic -> "super-weakly acyclic"

let analyze ?budgets ?pool sigma =
  let wa = Acyclic.weak sigma in
  let ja = Acyclic.joint sigma in
  let swa = Acyclic.super_weak sigma in
  let probe =
    if Theory.is_positive sigma then Some (Prover.prove ?budgets ?pool sigma) else None
  in
  let termination =
    match (wa, ja, swa, probe) with
    | Acyclic.Wa_acyclic _, _, _, _ -> Terminating Weakly_acyclic
    | _, Acyclic.Ja_acyclic _, _, _ -> Terminating Jointly_acyclic
    | _, _, Acyclic.Swa_acyclic _, _ -> Terminating Super_weakly_acyclic
    | _, _, _, Some { Prover.outcome = Guarded_chase.Engine.Saturated; _ } -> Probe_finite
    | _ -> Unknown
  in
  { language = Classify.classify sigma; wa; ja; swa; probe; termination }

let pp_termination ppf report =
  match report.termination with
  | Terminating klass -> (
    Fmt.pf ppf "terminating (%s" (klass_name klass);
    match report.probe with
    | Some ({ Prover.outcome = Guarded_chase.Engine.Saturated; _ } as p) ->
      Fmt.pf ppf "; finite chase: %d atoms, %d nulls, %d derivations)" p.Prover.atoms
        p.Prover.nulls p.Prover.derivations
    | Some _ | None -> Fmt.pf ppf ")")
  | Probe_finite -> (
    match report.probe with
    | Some p ->
      Fmt.pf ppf
        "probe-finite (no acyclicity certificate; probed chase: %d atoms, %d nulls — other \
         databases may diverge)"
        p.Prover.atoms p.Prover.nulls
    | None -> Fmt.pf ppf "probe-finite")
  | Unknown -> (
    match report.probe with
    | Some p ->
      Fmt.pf ppf "unknown (probe exhausted %d derivations; offending cycle: %d rules)"
        p.Prover.budget
        (List.length p.Prover.rule_cycle)
    | None -> Fmt.pf ppf "unknown (deciders cyclic; no probe on a theory with negation)")

let pp ppf report =
  Fmt.pf ppf "language: %s@." (Classify.language_name report.language);
  Fmt.pf ppf "weak acyclicity: %a@." Acyclic.pp_wa_verdict report.wa;
  Fmt.pf ppf "joint acyclicity: %a@." Acyclic.pp_ja_verdict report.ja;
  Fmt.pf ppf "super-weak acyclicity: %a@." Acyclic.pp_swa_verdict report.swa;
  (match report.probe with
  | Some p -> Fmt.pf ppf "chase probe: %a@." Prover.pp_probe p
  | None -> Fmt.pf ppf "chase probe: skipped (theory has negation)@.");
  Fmt.pf ppf "termination: %a@." pp_termination report
