(** The position graph of a theory (Fagin-Kolaitis-Miller-Popa).

    Nodes are argument positions (relation, index); a frontier variable
    occurring at body position [p] and head position [h] induces a
    regular edge [p -> h], and additionally a special edge [p => e] for
    every position [e] of an existential variable of the same rule —
    the special edges track where firing the rule invents a fresh
    labeled null from a value flowing in at [p]. The edge relation is
    exactly [Guarded_core.Acyclicity.dependency_graph]; this module
    adds the indexed view the termination deciders need: a dense node
    numbering, successor arrays, and the condensation into strongly
    connected components in topological order. *)

open Guarded_core

type position = Classify.position

type edge_kind = Acyclicity.edge_kind =
  | Regular
  | Special

type t = {
  nodes : position array;  (** dense numbering, sorted *)
  index : (position, int) Hashtbl.t;
  succ : (int * edge_kind) list array;
  comp : int array;  (** topological SCC number per node *)
  comp_count : int;
}

(* Every argument position of the theory's signature, graph-mentioned
   or not — certificates then rank the full signature. *)
let all_positions sigma =
  List.concat_map
    (fun ((_, _, arity) as rel) -> List.init arity (fun i -> (rel, i)))
    (Theory.relation_list sigma)

let of_theory (sigma : Theory.t) : t =
  let g = Acyclicity.dependency_graph sigma in
  let pos_set =
    Acyclicity.Pos_map.fold
      (fun src edges acc ->
        List.fold_left
          (fun acc (dst, _) -> Classify.Pos_set.add dst acc)
          (Classify.Pos_set.add src acc) edges)
      g
      (Classify.Pos_set.of_list (all_positions sigma))
  in
  let nodes = Array.of_list (Classify.Pos_set.elements pos_set) in
  let index = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i p -> Hashtbl.replace index p i) nodes;
  let succ = Array.make (Array.length nodes) [] in
  Acyclicity.Pos_map.iter
    (fun src edges ->
      let si = Hashtbl.find index src in
      succ.(si) <-
        List.map (fun (dst, kind) -> (Hashtbl.find index dst, kind)) edges)
    g;
  let comp, comp_count =
    Scc.compute (Array.length nodes) (Array.map (List.map fst) succ)
  in
  { nodes; index; succ; comp; comp_count }

let positions g = Array.to_list g.nodes
let node_count g = Array.length g.nodes

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun si dsts ->
      List.iter (fun (di, kind) -> acc := (g.nodes.(si), g.nodes.(di), kind) :: !acc) dsts)
    g.succ;
  List.rev !acc

let successors g p =
  match Hashtbl.find_opt g.index p with
  | None -> []
  | Some i -> List.map (fun (j, kind) -> (g.nodes.(j), kind)) g.succ.(i)

let component g p =
  match Hashtbl.find_opt g.index p with
  | None -> invalid_arg "Posgraph.component: unknown position"
  | Some i -> g.comp.(i)

let component_count g = g.comp_count

(* A special edge inside one SCC is exactly a cycle through a special
   edge (FKMP): [u => v] with a path [v ->* u]. *)
let special_in_scc g =
  let found = ref None in
  Array.iteri
    (fun si dsts ->
      if !found = None then
        List.iter
          (fun (di, kind) ->
            if !found = None && kind = Special && g.comp.(si) = g.comp.(di) then
              found := Some (si, di))
          dsts)
    g.succ;
  !found

(* Shortest path [src ->* dst] by BFS; either endpoint may coincide.
   Returns the node list starting at [src] and ending at [dst], with
   the edge kind taken *to reach* each non-initial node. *)
let path g src dst =
  if src = dst then Some [ src ]
  else begin
    let parent = Hashtbl.create 64 in
    let q = Queue.create () in
    Queue.add src q;
    Hashtbl.replace parent src src;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (w, _) ->
          if not (Hashtbl.mem parent w) then begin
            Hashtbl.replace parent w v;
            if w = dst then found := true else Queue.add w q
          end)
        g.succ.(v)
    done;
    if not !found then None
    else begin
      let rec build v acc = if v = src then v :: acc else build (Hashtbl.find parent v) (v :: acc) in
      Some (build dst [])
    end
  end

(* A cycle through a special edge, as [(position, kind of the edge to
   the cyclic successor)] pairs; [None] iff the theory is weakly
   acyclic. The cycle is [u => v ->* u]: the special edge first, then a
   shortest path back inside the component. *)
let special_cycle g =
  match special_in_scc g with
  | None -> None
  | Some (u, v) ->
    let nodes =
      if u = v then [ u ]
      else
        match path g v u with
        | Some p ->
          (* p is [v; ...; u]: the cycle is u => v -> ... -> u, so take
             u followed by p without its final (repeated) node. *)
          u :: List.filteri (fun i _ -> i < List.length p - 1) p
        | None -> assert false (* same SCC: a path back must exist *)
    in
    let arr = Array.of_list nodes in
    let n = Array.length arr in
    let kind_of si di =
      let rec pick = function
        | [] -> assert false (* consecutive cycle nodes are graph edges *)
        | (j, k) :: rest -> if j = di then k else pick rest
      in
      pick g.succ.(si)
    in
    (* Pair each node with the kind of the edge to its cyclic successor;
       the first edge is the special one. *)
    Some
      (List.init n (fun i ->
           let si = arr.(i) and di = arr.((i + 1) mod n) in
           let kind = if i = 0 then Special else kind_of si di in
           (g.nodes.(si), kind)))

let pp_position ppf (((rel, ann_ar, _), i) : position) =
  if ann_ar = 0 then Fmt.pf ppf "%s[%d]" rel i else Fmt.pf ppf "%s[+%d][%d]" rel ann_ar i
