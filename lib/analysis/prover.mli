(** Bounded-chase termination probe: run the restricted chase under
    escalating derivation budgets. A [Saturated] outcome carries the
    finite chase itself — the most direct termination certificate for
    the probed database; a budget-exhausted probe blames a concrete
    recursive rule cycle. *)

open Guarded_core

type probe = {
  outcome : Guarded_chase.Engine.outcome;
  db : Database.t;  (** the chase of the last attempt *)
  atoms : int;
  nulls : int;  (** distinct labeled nulls in [db] *)
  derivations : int;
  budget : int;  (** [max_derivations] of the last attempt *)
  rule_cycle : Rule.t list;
      (** when [Bounded]: the super-weak trigger cycle if one exists,
          otherwise a recursive dependency component containing an
          existential rule; [[]] otherwise *)
}

val default_budgets : int list
(** [1_000; 10_000; 100_000] derivations. *)

val critical_instance : ?cap:int -> Theory.t -> Database.t
(** Every relation populated with all tuples over the theory's
    constants plus one fresh constant — the canonical hardest finite
    input for the {e oblivious} chase (its saturation there is an
    all-instance certificate). Relations whose full population would
    exceed [cap] tuples (default 2048) get only the all-fresh tuple.
    Note the restricted chase trivially saturates on it: every
    existential head is pre-satisfied. *)

val probe_instance : Theory.t -> Database.t
(** The distinct-constants instance: one tuple per relation, every
    slot a fresh constant — no accidental head satisfaction, so the
    restricted chase genuinely runs. The prover's default input. *)

val prove :
  ?db:Database.t -> ?budgets:int list -> ?pool:Guarded_par.Pool.t -> Theory.t -> probe
(** Restricted chase of [db] (default: {!probe_instance}) under each
    budget in turn, stopping at the first saturation; steps are not
    recorded, keeping the probe's heap linear in the chase. Saturation
    certifies finiteness of the probed instance's chase only — the
    acyclicity deciders are the all-database certificates.
    @raise Invalid_argument on a theory with negation. *)

val pp_probe : probe Fmt.t
