(** Strongly connected components of a dense int graph (Tarjan). *)

val compute : int -> int list array -> int array * int
(** [compute n succ] numbers the strongly connected components of the
    graph on nodes [0..n-1] with successor lists [succ]. Returns
    [(comp, count)] where [comp.(v)] is the component of [v], numbered
    topologically: every edge [u -> v] has [comp.(u) <= comp.(v)], with
    equality exactly when [u] and [v] are in the same component. *)

val path : int list array -> int -> int -> int list option
(** Shortest path (BFS) from [src] to [dst], endpoints included;
    [Some [src]] when they coincide. *)

val cycle_through : int list array -> int -> int -> int list option
(** Given an edge [u -> v], the cycle [u; v; ...] closing back to [u]
    (final repetition dropped); [None] when [v] cannot reach [u]. *)
