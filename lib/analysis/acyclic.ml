(** Deciders for the standard chase-termination hierarchy
    weak ⊆ joint ⊆ super-weak acyclicity.

    Each decider returns either a machine-checkable certificate — a
    rank function witnessing that the relevant dependency graph is
    acyclic — or a concrete cycle as counterexample; the [verify_*]
    functions re-derive the graph and check the witness, so a verdict
    can be audited independently of the decision procedure.

    - {b Weak acyclicity} (Fagin-Kolaitis-Miller-Popa): no cycle of the
      position graph passes through a special edge. Certificate: ranks
      over positions that are non-decreasing along regular edges and
      strictly increasing along special ones.
    - {b Joint acyclicity} (Krötzsch-Rudolph): for each existential
      variable z, Ω(z) is the position closure nulls invented for z can
      reach — seeded with z's head positions and propagated through any
      frontier variable all of whose body positions lie inside the set.
      The existential dependency graph has an edge z -> z' when z''s
      rule has a frontier variable whose body positions all lie in
      Ω(z); joint acyclicity is acyclicity of that graph.
    - {b Super-weak acyclicity} (Marnette): over the skolemized theory,
      places are (rule, atom occurrence, term slot) triples. Move(P) is
      the closure of P under (i) head-place to body-place transfer at
      the same slot when the two atoms unify after renaming apart, and
      (ii) within a rule, body-to-head propagation of a variable once
      {e all} its body places are in the set. Rule σ triggers σ' when
      some frontier variable x of σ' has all its body places inside
      Move(Out(σ, z)) for an existential z of σ; super-weak acyclicity
      is acyclicity of the trigger relation.

    All three certify termination of the restricted (and skolem) chase
    on every database. The containments hold by construction: a joint
    cycle maps to a weak one and a super-weak cycle to a joint one. *)

open Guarded_core

type position = Classify.position

type edge_kind = Acyclicity.edge_kind =
  | Regular
  | Special

type evar = int * string

type wa_verdict =
  | Wa_acyclic of (position * int) list
  | Wa_cyclic of (position * edge_kind) list

type ja_verdict =
  | Ja_acyclic of (evar * int) list
  | Ja_cyclic of evar list

type swa_verdict =
  | Swa_acyclic of (int * int) list
  | Swa_cyclic of int list

(* ------------------------------------------------------------------ *)
(* Weak acyclicity.                                                    *)

let weak sigma =
  let g = Posgraph.of_theory sigma in
  match Posgraph.special_cycle g with
  | Some cycle -> Wa_cyclic cycle
  | None ->
    Wa_acyclic (List.map (fun p -> (p, Posgraph.component g p)) (Posgraph.positions g))

module Pos_map = Map.Make (struct
  type t = position

  let compare = compare
end)

let cyclic_pairs l =
  let arr = Array.of_list l in
  let n = Array.length arr in
  List.init n (fun i -> (arr.(i), arr.((i + 1) mod n)))

let verify_weak sigma = function
  | Wa_acyclic ranks ->
    let rank = List.fold_left (fun m (p, r) -> Pos_map.add p r m) Pos_map.empty ranks in
    let g = Posgraph.of_theory sigma in
    List.for_all (fun p -> Pos_map.mem p rank) (Posgraph.positions g)
    && List.for_all
         (fun (p, q, kind) ->
           match (Pos_map.find_opt p rank, Pos_map.find_opt q rank) with
           | Some rp, Some rq -> ( match kind with Regular -> rp <= rq | Special -> rp < rq)
           | _ -> false)
         (Posgraph.edges g)
  | Wa_cyclic cycle ->
    let g = Posgraph.of_theory sigma in
    cycle <> []
    && List.exists (fun (_, kind) -> kind = Special) cycle
    && List.for_all
         (fun ((p, kind), (q, _)) -> List.mem (q, kind) (Posgraph.successors g p))
         (cyclic_pairs cycle)

(* ------------------------------------------------------------------ *)
(* Joint acyclicity.                                                   *)

module Pos_set = Classify.Pos_set

(* Per rule, the frontier variables with a body argument position:
   (variable, body positions, head positions). *)
let frontier_info rules =
  Array.map
    (fun r ->
      let body = Rule.body_atoms r and head = Rule.head r in
      Names.Sset.elements (Rule.fvars r)
      |> List.filter_map (fun x ->
             let bp = Classify.positions_of_var body x in
             if Pos_set.is_empty bp then None
             else Some (x, bp, Classify.positions_of_var head x)))
    rules

(* Ω(z): least position set containing z's head positions and closed
   under frontier-variable propagation (all body positions inside). *)
let omega rules infos (i, z) =
  let om = ref (Classify.positions_of_var (Rule.head rules.(i)) z) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (List.iter (fun (_, bp, hp) ->
           if Pos_set.subset bp !om && not (Pos_set.subset hp !om) then begin
             om := Pos_set.union hp !om;
             changed := true
           end))
      infos
  done;
  !om

(* The existential dependency graph: nodes are the existential
   variables; [succ] over their dense numbering. *)
let ja_graph sigma =
  let rules = Array.of_list (Theory.rules sigma) in
  let infos = frontier_info rules in
  let evars =
    Array.to_list rules
    |> List.mapi (fun i r -> List.map (fun z -> (i, z)) (Names.Sset.elements (Rule.evars r)))
    |> List.concat
    |> Array.of_list
  in
  let by_rule = Hashtbl.create 16 in
  Array.iteri (fun idx (i, _) -> Hashtbl.add by_rule i idx) evars;
  let succ =
    Array.map
      (fun z ->
        let om = omega rules infos z in
        (* z -> every existential of a rule consuming Ω(z) through a
           frontier variable. *)
        let deps = ref [] in
        Array.iteri
          (fun j info ->
            if List.exists (fun (_, bp, _) -> Pos_set.subset bp om) info then
              deps := List.rev_append (Hashtbl.find_all by_rule j) !deps)
          infos;
        List.sort_uniq compare !deps)
      evars
  in
  (evars, succ)

let first_intra_edge comp succ =
  let found = ref None in
  Array.iteri
    (fun u dsts ->
      if !found = None then
        List.iter (fun v -> if !found = None && comp.(u) = comp.(v) then found := Some (u, v)) dsts)
    succ;
  !found

let joint sigma =
  let evars, succ = ja_graph sigma in
  let comp, _ = Scc.compute (Array.length evars) succ in
  match first_intra_edge comp succ with
  | Some (u, v) ->
    let cycle = match Scc.cycle_through succ u v with Some c -> c | None -> assert false in
    Ja_cyclic (List.map (fun i -> evars.(i)) cycle)
  | None -> Ja_acyclic (Array.to_list (Array.mapi (fun i z -> (z, comp.(i))) evars))

let verify_joint sigma verdict =
  let evars, succ = ja_graph sigma in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i z -> Hashtbl.replace index z i) evars;
  match verdict with
  | Ja_acyclic ranks ->
    let rank z = List.assoc_opt z ranks in
    Array.for_all (fun z -> rank z <> None) evars
    && Array.for_all
         (fun u ->
           List.for_all
             (fun v ->
               match (rank evars.(u), rank evars.(v)) with
               | Some ru, Some rv -> ru < rv
               | _ -> false)
             succ.(u))
         (Array.init (Array.length evars) Fun.id)
  | Ja_cyclic cycle ->
    cycle <> []
    && List.for_all
         (fun (z, z') ->
           match (Hashtbl.find_opt index z, Hashtbl.find_opt index z') with
           | Some u, Some v -> List.mem v succ.(u)
           | _ -> false)
         (cyclic_pairs cycle)

(* ------------------------------------------------------------------ *)
(* Super-weak acyclicity.                                              *)

(* Terms of the skolemized theory: in a rule's head, an existential z
   becomes the skolem term f_{rule,z}(frontier variables). Variables
   carry a copy tag so that unifying a head atom of σ against a body
   atom of σ' (possibly σ = σ') renames the two rules apart; skolem
   function symbols are shared across copies. *)
type sterm =
  | SC of string
  | SV of (int * string)  (** copy tag, variable name *)
  | SF of int * string * sterm list  (** skolem: rule index, existential *)

let skolemize ~copy ~rule_idx ~evset ~frontier t =
  match t with
  | Term.Const c -> SC c
  | Term.Null n -> SC (Fmt.str "_n%d" n)
  | Term.Var x ->
    if Names.Sset.mem x evset then
      SF (rule_idx, x, List.map (fun v -> SV (copy, v)) frontier)
    else SV (copy, x)

let rec resolve subst t =
  match t with
  | SV key -> (
    match Hashtbl.find_opt subst key with Some t' -> resolve subst t' | None -> t)
  | SC _ | SF _ -> t

let rec occurs subst key t =
  match resolve subst t with
  | SV k -> k = key
  | SC _ -> false
  | SF (_, _, args) -> List.exists (occurs subst key) args

let rec unify subst a b =
  let a = resolve subst a and b = resolve subst b in
  match (a, b) with
  | SV k, SV k' when k = k' -> true
  | SV k, t | t, SV k ->
    if occurs subst k t then false
    else begin
      Hashtbl.replace subst k t;
      true
    end
  | SC c, SC c' -> c = c'
  | SF (r, z, args), SF (r', z', args') ->
    r = r' && z = z' && List.for_all2 (unify subst) args args'
  | _ -> false

let unifiable terms terms' =
  List.length terms = List.length terms'
  &&
  let subst = Hashtbl.create 8 in
  List.for_all2 (unify subst) terms terms'

(* One atom occurrence of the skolemized theory: the original terms
   (for variable places) and the skolemized terms (for unification). *)
type occurrence = {
  o_rule : int;
  o_var : string array;  (** variable name per slot, "" for non-vars *)
  o_skolem : sterm list;
  o_rel : int;  (** [Atom.rel_id] *)
  o_place0 : int;  (** dense id of this occurrence's first slot *)
}

type swa_ctx = {
  rules : Rule.t array;
  heads : occurrence array array;  (** per rule, head atom occurrences *)
  bodies : occurrence array array;  (** per rule, positive body occurrences *)
  nplaces : int;
  (* body places per (rule, variable), and head places per (rule, variable) *)
  in_places : (int * string, int list) Hashtbl.t;
  head_var_places : (int * string, int list) Hashtbl.t;
  unif : (int * int, bool) Hashtbl.t;  (** (head place0, body place0) -> atoms unify *)
  place_body_var : (int * string) option array;  (** body slot -> its variable *)
}

let swa_ctx sigma =
  let rules = Array.of_list (Theory.rules sigma) in
  let nplaces = ref 0 in
  let in_places = Hashtbl.create 64 in
  let head_var_places = Hashtbl.create 64 in
  let occurrences side i r atoms =
    let evset = Rule.evars r in
    let frontier = Names.Sset.elements (Rule.fvars r) in
    let copy = (2 * i) + if side = `Body then 1 else 0 in
    Array.of_list
      (List.map
         (fun a ->
           let terms = Atom.terms a in
           let place0 = !nplaces in
           nplaces := !nplaces + List.length terms;
           List.iteri
             (fun slot t ->
               match t with
               | Term.Var x ->
                 let tbl = if side = `Body then in_places else head_var_places in
                 (* Existentials never occur in bodies; head places of an
                    existential are its Out places. *)
                 let key = (i, x) in
                 Hashtbl.replace tbl key
                   ((place0 + slot)
                   :: (match Hashtbl.find_opt tbl key with Some l -> l | None -> []))
               | Term.Const _ | Term.Null _ -> ())
             terms;
           {
             o_rule = i;
             o_var =
               Array.of_list
                 (List.map (function Term.Var x -> x | Term.Const _ | Term.Null _ -> "") terms);
             o_skolem = List.map (skolemize ~copy ~rule_idx:i ~evset ~frontier) terms;
             o_rel = Atom.rel_id a;
             o_place0 = place0;
           })
         atoms)
  in
  let heads = Array.mapi (fun i r -> occurrences `Head i r (Rule.head r)) rules in
  let bodies = Array.mapi (fun i r -> occurrences `Body i r (Rule.body_atoms r)) rules in
  let nplaces = !nplaces in
  let place_body_var = Array.make nplaces None in
  Array.iter
    (Array.iter (fun o ->
         Array.iteri
           (fun slot x -> if x <> "" then place_body_var.(o.o_place0 + slot) <- Some (o.o_rule, x))
           o.o_var))
    bodies;
  let unif = Hashtbl.create 256 in
  Array.iter
    (Array.iter (fun h ->
         Array.iter
           (Array.iter (fun b ->
                if h.o_rel = b.o_rel then
                  Hashtbl.replace unif (h.o_place0, b.o_place0) (unifiable h.o_skolem b.o_skolem)))
           bodies))
    heads;
  { rules; heads; bodies; nplaces; in_places; head_var_places; unif; place_body_var }

(* Move(P): mark-and-propagate closure of the two transfer rules. *)
let move ctx (start : int list) : bool array =
  let in_move = Array.make ctx.nplaces false in
  (* Remaining body places per (rule, var) before its head places join. *)
  let remaining = Hashtbl.create 64 in
  Hashtbl.iter (fun key places -> Hashtbl.replace remaining key (List.length places)) ctx.in_places;
  let q = Queue.create () in
  let add p =
    if not in_move.(p) then begin
      in_move.(p) <- true;
      Queue.add p q
    end
  in
  List.iter add start;
  (* Which occurrence does a place belong to? Precompute a map from
     place0 ranges lazily: walk occurrences when processing instead. *)
  let head_occ_of_place = Array.make ctx.nplaces None in
  Array.iter
    (Array.iter (fun o ->
         Array.iteri (fun slot _ -> head_occ_of_place.(o.o_place0 + slot) <- Some o) o.o_var))
    ctx.heads;
  while not (Queue.is_empty q) do
    let p = Queue.pop q in
    (* (i) head place -> same-slot body place of any unifying atom. *)
    (match head_occ_of_place.(p) with
    | Some h ->
      let slot = p - h.o_place0 in
      Array.iter
        (Array.iter (fun b ->
             if
               h.o_rel = b.o_rel
               && (match Hashtbl.find_opt ctx.unif (h.o_place0, b.o_place0) with
                  | Some ok -> ok
                  | None -> false)
             then add (b.o_place0 + slot)))
        ctx.bodies
    | None -> ());
    (* (ii) body place of x: once every body place of x is in Move, the
       head places of x join. *)
    match ctx.place_body_var.(p) with
    | Some key -> (
      match Hashtbl.find_opt remaining key with
      | Some n ->
        let n = n - 1 in
        Hashtbl.replace remaining key n;
        if n = 0 then
          List.iter add
            (match Hashtbl.find_opt ctx.head_var_places key with Some l -> l | None -> [])
      | None -> ())
    | None -> ()
  done;
  in_move

(* The trigger graph: σ -> σ' when for some existential z of σ and
   frontier variable x of σ', every body place of x is in
   Move(Out(σ, z)). *)
let swa_graph sigma =
  let ctx = swa_ctx sigma in
  let n = Array.length ctx.rules in
  let succ = Array.make n [] in
  Array.iteri
    (fun i r ->
      Names.Sset.iter
        (fun z ->
          match Hashtbl.find_opt ctx.head_var_places (i, z) with
          | None -> ()  (* existential without argument occurrence *)
          | Some out ->
            let mv = move ctx out in
            Array.iteri
              (fun j r' ->
                if not (List.mem j succ.(i)) then
                  let triggers =
                    Names.Sset.exists
                      (fun x ->
                        match Hashtbl.find_opt ctx.in_places (j, x) with
                        | Some (_ :: _ as places) -> List.for_all (fun p -> mv.(p)) places
                        | Some [] | None -> false)
                      (Rule.fvars r')
                  in
                  if triggers then succ.(i) <- j :: succ.(i))
              ctx.rules)
        (Rule.evars r))
    ctx.rules;
  Array.map (List.sort_uniq compare) succ

let super_weak sigma =
  let succ = swa_graph sigma in
  let comp, _ = Scc.compute (Array.length succ) succ in
  match first_intra_edge comp succ with
  | Some (u, v) -> (
    match Scc.cycle_through succ u v with
    | Some cycle -> Swa_cyclic cycle
    | None -> assert false)
  | None -> Swa_acyclic (Array.to_list (Array.mapi (fun i c -> (i, c)) comp))

let verify_super_weak sigma verdict =
  let succ = swa_graph sigma in
  let n = Array.length succ in
  match verdict with
  | Swa_acyclic ranks ->
    let rank i = List.assoc_opt i ranks in
    List.for_all (fun i -> rank i <> None) (List.init n Fun.id)
    && List.for_all
         (fun u ->
           List.for_all
             (fun v ->
               match (rank u, rank v) with Some ru, Some rv -> ru < rv | _ -> false)
             succ.(u))
         (List.init n Fun.id)
  | Swa_cyclic cycle ->
    cycle <> []
    && List.for_all
         (fun (u, v) -> u >= 0 && u < n && List.mem v succ.(u))
         (cyclic_pairs cycle)

(* ------------------------------------------------------------------ *)

let pp_evar ppf ((i, z) : evar) = Fmt.pf ppf "%s@@%d" z i

let pp_wa_verdict ppf = function
  | Wa_acyclic ranks -> Fmt.pf ppf "acyclic (%d positions ranked)" (List.length ranks)
  | Wa_cyclic cycle ->
    Fmt.pf ppf "cyclic: %a"
      (Fmt.list ~sep:Fmt.nop (fun ppf (p, kind) ->
           Fmt.pf ppf "%a %s " Posgraph.pp_position p
             (match kind with Regular -> "->" | Special -> "=>")))
      cycle;
    match cycle with
    | (p, _) :: _ -> Posgraph.pp_position ppf p
    | [] -> ()

let pp_ja_verdict ppf = function
  | Ja_acyclic ranks -> Fmt.pf ppf "acyclic (%d existentials ranked)" (List.length ranks)
  | Ja_cyclic cycle ->
    Fmt.pf ppf "cyclic: %a" (Fmt.list ~sep:(Fmt.any " -> ") pp_evar) cycle;
    (match cycle with z :: _ -> Fmt.pf ppf " -> %a" pp_evar z | [] -> ())

let pp_swa_verdict ppf = function
  | Swa_acyclic ranks -> Fmt.pf ppf "acyclic (%d rules ranked)" (List.length ranks)
  | Swa_cyclic cycle ->
    Fmt.pf ppf "cyclic: %a"
      (Fmt.list ~sep:(Fmt.any " -> ") (fun ppf i -> Fmt.pf ppf "rule %d" i))
      cycle;
    (match cycle with i :: _ -> Fmt.pf ppf " -> rule %d" i | [] -> ())
