(* Tarjan's strongly connected components over a dense int graph.
   Components are numbered in topological order: for every edge u -> v,
   [comp.(u) <= comp.(v)], with equality exactly when u and v share a
   component. Tarjan emits components in reverse topological order
   (a component only after everything it reaches), so flipping the
   emission index yields the topological numbering directly. *)

let compute (n : int) (succ : int list array) : int array * int =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec visit v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          visit w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succ.(v);
    if lowlink.(v) = index.(v) then begin
      let c = !next_comp in
      incr next_comp;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- c;
          if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  let count = !next_comp in
  (* Reverse the emission order into a topological numbering. *)
  for v = 0 to n - 1 do
    comp.(v) <- count - 1 - comp.(v)
  done;
  (comp, count)

let path (succ : int list array) (src : int) (dst : int) : int list option =
  if src = dst then Some [ src ]
  else begin
    let parent = Hashtbl.create 64 in
    let q = Queue.create () in
    Queue.add src q;
    Hashtbl.replace parent src src;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun w ->
          if not (Hashtbl.mem parent w) then begin
            Hashtbl.replace parent w v;
            if w = dst then found := true else Queue.add w q
          end)
        succ.(v)
    done;
    if not !found then None
    else begin
      let rec build v acc =
        if v = src then v :: acc else build (Hashtbl.find parent v) (v :: acc)
      in
      Some (build dst [])
    end
  end

(* A cycle through the edge [u -> v]: [u] followed by a shortest path
   [v ->* u] with the final (repeated) [u] dropped. *)
let cycle_through (succ : int list array) (u : int) (v : int) : int list option =
  if u = v then Some [ u ]
  else
    match path succ v u with
    | None -> None
    | Some p -> Some (u :: List.filteri (fun i _ -> i < List.length p - 1) p)
