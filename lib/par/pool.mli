(** A reusable pool of worker domains for data-parallel evaluation.

    The pool owns [size - 1] spawned domains (the calling domain is the
    remaining participant) that block on a job queue between parallel
    sections, so repeated rounds of a fixpoint reuse the same domains
    instead of paying a spawn per round. All combinators are barriers:
    they return only once every chunk has been processed, with a
    happens-before edge between the workers' writes and the caller's
    reads of the results.

    Callers thread a [t option] through evaluation entry points
    ([?pool] parameters); [None] selects the sequential code path with
    zero behavioral change. Work submitted to the pool must only read
    shared structures (databases, rules) and write to chunk-private
    buffers — the interning tables of {!Guarded_core.Term} and
    {!Guarded_core.Atom} are domain-safe, everything else is the
    caller's responsibility. Combinators may be nested: an inner
    parallel section executed by a busy pool degrades to the calling
    domain doing all chunks itself, so no deadlock arises. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] participants
    ([domains - 1] worker domains). Defaults to
    [Domain.recommended_domain_count ()]; values [< 1] are clamped to 1
    (a pool of 1 runs everything on the calling domain but still takes
    the parallel code paths, which is what determinism tests compare
    against). Pools are registered for [at_exit] shutdown, so leaking
    one cannot hang process exit. *)

val size : t -> int
(** Number of participants (worker domains + the caller). *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], re-exported so callers need
    no direct [Domain] dependency. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent; using the pool
    afterwards runs all work on the calling domain. *)

val parallel_map : t option -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] with the elements
    processed concurrently by the pool's participants (dynamic
    single-element scheduling, so uneven chunks balance). The result
    array is in input order regardless of scheduling. [None], a pool of
    1, and arrays of length [<= 1] run sequentially in the caller. If
    any [f] raises, remaining elements may be skipped and the first
    exception observed is re-raised in the caller. *)

val parallel_iter_chunks : t option -> int -> (int -> int -> unit) -> unit
(** [parallel_iter_chunks pool n f] splits the index range [0..n-1]
    into at most [size pool] contiguous chunks and calls [f lo hi]
    (with [hi] exclusive) on each, concurrently. [f] must write only to
    per-chunk state. *)
