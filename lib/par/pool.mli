(** A reusable pool of worker domains for data-parallel evaluation.

    The pool owns [size - 1] spawned domains (the calling domain is the
    remaining participant) that block on a job queue between parallel
    sections, so repeated rounds of a fixpoint reuse the same domains
    instead of paying a spawn per round. All combinators are barriers:
    they return only once every chunk has been processed, with a
    happens-before edge between the workers' writes and the caller's
    reads of the results.

    Callers thread a [t option] through evaluation entry points
    ([?pool] parameters); [None] selects the sequential code path with
    zero behavioral change. Work submitted to the pool must only read
    shared structures (databases, rules) and write to chunk-private
    buffers — the interning tables of {!Guarded_core.Term} and
    {!Guarded_core.Atom} are domain-safe, everything else is the
    caller's responsibility. Combinators may be nested: an inner
    parallel section executed by a busy pool degrades to the calling
    domain doing all chunks itself, so no deadlock arises. *)

type t

val create : ?domains:int -> ?min_work:int -> ?oversubscribe:bool -> unit -> t
(** [create ~domains ()] makes a pool of [domains] participants
    ([domains - 1] worker domains, spawned lazily on the first dispatch
    that actually fans out — idle domains still cost stop-the-world
    collection rendezvous, so an unused pool costs nothing). Defaults to
    [Domain.recommended_domain_count ()]; values [< 1] are clamped to 1
    (a pool of 1 runs everything on the calling domain but still takes
    the parallel code paths, which is what determinism tests compare
    against). Pools are registered for [at_exit] shutdown, so leaking
    one cannot hang process exit.

    [domains] is clamped to [recommended_domains ()] unless
    [oversubscribe] is set: running more domains than cores is a strict
    loss in OCaml 5 — each one joins every stop-the-world minor
    collection, slowing even code that never dispatches to the pool —
    so only tests (which must exercise multi-domain scheduling on
    whatever machine CI provides) opt out of the clamp.

    [min_work] (default 32, clamped to [>= 1]) is the pool's fan-out
    threshold: parallel sections over fewer elements run sequentially
    on the calling domain. Dispatching a handful of elements costs more
    in queue and condition-variable traffic than it buys — on machines
    with few cores it made pooled fixpoints measurably slower than
    sequential ones — and since the combinators are deterministic
    either way, the threshold changes no observable result. Set
    [~min_work:1] to force the parallel path (tests do). *)

val size : t -> int
(** Number of participants (worker domains + the caller). *)

val min_work : t -> int
(** The pool's fan-out threshold. Fixpoint engines whose dispatch width
    (rule-anchor units) is not their work measure consult this
    directly — e.g. gating a round on its delta cardinality — and then
    force the dispatch with [~min_work:1]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], re-exported so callers need
    no direct [Domain] dependency. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent; using the pool
    afterwards runs all work on the calling domain. *)

val parallel_map : ?min_work:int -> t option -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] with the elements
    processed concurrently by the pool's participants (dynamic
    single-element scheduling, so uneven chunks balance). The result
    array is in input order regardless of scheduling. [None], a pool of
    1, arrays of length [<= 1], and arrays shorter than the fan-out
    threshold ([min_work] if given, else the pool's) run sequentially
    in the caller. If any [f] raises, remaining elements may be skipped
    and the first exception observed is re-raised in the caller. *)

val parallel_iter_chunks :
  ?min_work:int -> t option -> int -> (int -> int -> unit) -> unit
(** [parallel_iter_chunks pool n f] splits the index range [0..n-1]
    into at most [size pool] contiguous chunks and calls [f lo hi]
    (with [hi] exclusive) on each, concurrently; ranges shorter than
    the fan-out threshold ([min_work] if given, else the pool's) run as
    a single [f 0 n] in the caller. [f] must write only to per-chunk
    state. *)
