(** Domain pool: persistent workers, a mutex-guarded job queue, and
    barrier-style map/iter combinators. See the interface for the
    contract; the implementation notes below cover the memory-model
    obligations.

    Publication protocol: [parallel_map] hands each worker a closure
    that pulls element indexes from an [Atomic] counter and writes
    results into a shared array. The caller participates too, then
    blocks on a per-call condition variable until the submitted tasks
    have signalled completion; that mutex acquisition is the
    happens-before edge making the workers' result writes visible to
    the caller. Exceptions inside [f] are captured into an [Atomic]
    cell (first one wins), drain the remaining work quickly, and are
    re-raised at the barrier. *)

type task = unit -> unit

type t = {
  size : int;  (** participants: workers + the calling domain *)
  min_work : int;  (** below this many elements, run sequentially *)
  mutable workers : unit Domain.t array;
  mutable started : bool;  (** workers spawned (lazily, on first dispatch) *)
  queue : task Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable stopped : bool;
}

(* Worker main loop: block until a task or shutdown arrives. Tasks are
   exception-safe wrappers built by [parallel_map]; the catch-all is a
   backstop so a rogue task cannot kill the domain. *)
let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.stopped do
    Condition.wait pool.has_work pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* stopped *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (try task () with _ -> ());
    worker_loop pool
  end

(* Every pool ever created, shut down at exit: a worker blocked on
   [has_work] would otherwise keep the runtime alive after the main
   domain returns. *)
let registry = ref []
let registry_mutex = Mutex.create ()

let recommended_domains () = Domain.recommended_domain_count ()

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let () = at_exit (fun () -> List.iter shutdown !registry)

let default_min_work = 32

let create ?domains ?(min_work = default_min_work) ?(oversubscribe = false) () =
  let requested =
    max 1 (match domains with Some n -> n | None -> recommended_domains ())
  in
  (* More domains than cores is a strict loss: domains are heavyweight,
     and every minor collection is a rendezvous across all of them, so
     an oversubscribed pool slows even the code that never dispatches
     to it. Clamp to the hardware unless the caller insists (tests do,
     to exercise multi-domain scheduling on any machine). *)
  let size =
    if oversubscribe then requested else min requested (recommended_domains ())
  in
  let pool =
    {
      size;
      min_work = max 1 min_work;
      workers = [||];
      started = false;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      stopped = false;
    }
  in
  Mutex.lock registry_mutex;
  registry := pool :: !registry;
  Mutex.unlock registry_mutex;
  pool

(* Worker domains are spawned on the first dispatch that actually fans
   out, not at [create]: idle domains are not free — every minor
   collection is a stop-the-world rendezvous across all domains — so a
   pool whose batches all fall under the fan-out threshold must cost
   exactly nothing. Called with [pool.mutex] held. *)
let ensure_workers pool =
  if (not pool.started) && not pool.stopped then begin
    pool.started <- true;
    pool.workers <-
      Array.init (pool.size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool))
  end

let size pool = pool.size
let min_work pool = pool.min_work

(* Fan-out threshold: the per-call override wins, else the pool's. The
   queue/condvar round trip costs more than a batch of small elements,
   so tiny batches stay on the calling domain — on few-core boxes this
   is what keeps pooled runs from regressing below sequential ones. *)
let effective_min_work min_work pool =
  match min_work with Some m -> max 1 m | None -> pool.min_work

let parallel_map ?min_work pool f arr =
  let n = Array.length arr in
  let sequential () = Array.map f arr in
  match pool with
  | None -> sequential ()
  | Some pool
    when pool.size <= 1 || pool.stopped || n <= 1
         || n < effective_min_work min_work pool ->
    sequential ()
  | Some pool ->
    let results = Array.make n None in
    let error : exn option Atomic.t = Atomic.make None in
    let next = Atomic.make 0 in
    (* One participant's share: pull indexes until exhausted (or an
       exception elsewhere drains the run). *)
    let work () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else
          match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set error None (Some e))
      done
    in
    let helpers = min (pool.size - 1) (n - 1) in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref helpers in
    let task () =
      work ();
      Mutex.lock done_mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast done_cond;
      Mutex.unlock done_mutex
    in
    Mutex.lock pool.mutex;
    ensure_workers pool;
    for _ = 1 to helpers do
      Queue.add task pool.queue
    done;
    Condition.broadcast pool.has_work;
    Mutex.unlock pool.mutex;
    work ();
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results

let parallel_iter_chunks ?min_work pool n f =
  if n > 0 then begin
    let parts =
      match pool with
      | None -> 1
      | Some pool when n < effective_min_work min_work pool -> 1
      | Some pool -> max 1 (min pool.size n)
    in
    if parts = 1 then f 0 n
    else begin
      let base = n / parts and rem = n mod parts in
      let bounds =
        Array.init parts (fun k ->
            let lo = (k * base) + min k rem in
            let hi = lo + base + if k < rem then 1 else 0 in
            (lo, hi))
      in
      (* The bounds array has only [parts] elements; the threshold was
         already applied to [n], so don't re-apply it here. *)
      ignore (parallel_map ~min_work:1 pool (fun (lo, hi) -> f lo hi) bounds)
    end
  end
